"""Sensor fusion across two buildings with one backbone link.

Scenario: two office buildings, each with a dense mesh of temperature
sensors (modelled as connected Erdos-Renyi clusters); a single backbone
link joins them.  The fleet must agree on the campus-average temperature.
The cut is NOT given — the orchestrator detects it spectrally, exactly
what a deployment would do.

Run:  python examples/sensor_fusion.py
"""

from __future__ import annotations

import numpy as np

from repro import SparseCutAveraging, VanillaGossip, estimate_averaging_time
from repro.graphs.composites import two_erdos_renyi


def main() -> None:
    rng = np.random.default_rng(7)
    pair = two_erdos_renyi(40, 56, p=0.25, n_bridges=1, seed=11)
    graph = pair.graph
    print(f"campus network: {graph.n_vertices} sensors, "
          f"{graph.n_edges} radio links, 1 backbone link")

    # Building A reads ~21.3 C, building B ~18.1 C, sensor noise 0.2 C.
    truth = pair.partition
    temperatures = np.where(truth.side == 0, 21.3, 18.1)
    temperatures = temperatures + rng.normal(0.0, 0.2, size=len(temperatures))
    campus_average = float(temperatures.mean())
    print(f"true campus average: {campus_average:.3f} C")

    # The deployment does not know the partition; detect it.
    sca = SparseCutAveraging(graph)  # Fiedler sweep inside
    detected = sca.partition
    agreement = max(
        np.mean(detected.side == truth.side),
        np.mean(detected.side == 1 - truth.side),
    )
    print(f"detected cut: {detected.n1}/{detected.n2} split, "
          f"{detected.cut_size} crossing link(s), "
          f"side agreement with ground truth {100 * float(agreement):.1f}%")

    result = sca.run(temperatures, seed=1, target_ratio=1e-8)
    print(f"algorithm A: consensus {result.values.mean():.3f} C after "
          f"t = {result.duration:.1f} (all sensors within "
          f"{np.max(np.abs(result.values - campus_average)):.1e} C)")

    vanilla = estimate_averaging_time(
        graph, VanillaGossip, temperatures - temperatures.mean(),
        n_replicates=4, seed=2, max_time=4000.0,
    )
    a_est = sca.averaging_time(
        temperatures - temperatures.mean(), n_replicates=4, seed=3
    )
    print(f"\naveraging times: vanilla ~ {vanilla.estimate:.1f}, "
          f"algorithm A ~ {a_est.estimate:.1f} "
          f"({vanilla.estimate / a_est.estimate:.1f}x faster across the "
          f"backbone bottleneck)")


if __name__ == "__main__":
    main()

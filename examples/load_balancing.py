"""Load balancing between two racks joined by a thin aggregation link.

Scenario from the diffusive load-balancing literature the paper cites
([5], Muthukrishnan-Ghosh-Schultz): work items sit on machines; pairwise
exchanges must equalize load.  Two racks of machines are each well
connected internally (8-regular random graphs) but share one uplink — the
paper's sparse-cut regime.  A burst of jobs lands on one machine of rack
1; we compare how fast each scheme drains the imbalance.

Run:  python examples/load_balancing.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AlgorithmAConfig,
    SparseCutAveraging,
    VanillaGossip,
    estimate_averaging_time,
)
from repro.algorithms.second_order import SecondOrderDiffusionSync
from repro.graphs.composites import two_expanders
from repro.util.tables import Table


def main() -> None:
    pair = two_expanders(48, 48, degree=8, n_bridges=1, seed=5)
    graph, partition = pair.graph, pair.partition
    print(f"cluster: 2 racks x 48 machines, 8-regular in-rack mesh, "
          f"1 uplink ({graph.n_edges} links total)")

    # Burst: 960 jobs land on rack 1 (the rack-local admission queue
    # spreads them evenly, 20 per machine); rack 2 is idle.  All of the
    # imbalance therefore sits across the one uplink — the regime where
    # Theorem 1 bites.
    load = np.where(partition.side == 0, 20.0, 0.0)
    target = load.mean()
    workload = load - target  # zero-mean deviation, what the theory tracks
    print(f"initial: rack-1 machines hold 20 jobs each, rack 2 idle; "
          f"balanced load is {target:.0f} per machine")

    table = Table(["scheme", "time to ~2x-balanced (e^-2 variance)"],
                  title="drain time comparison")

    vanilla = estimate_averaging_time(
        graph, VanillaGossip, workload, n_replicates=4, seed=1,
        max_time=5000.0,
    )
    table.add_row(["vanilla pairwise exchange", vanilla.estimate])

    solver = SecondOrderDiffusionSync(graph)
    rounds = solver.rounds_to_ratio(workload, max_rounds=100_000)
    table.add_row(["second-order diffusion [5] (sync rounds)", float(rounds)])

    # The paper's safety constant C >> 1 covers worst-case mixing; these
    # racks are strong expanders (in-rack mixing time ~1.5 time units),
    # so one epoch of C = 1 already mixes them ~14x over.  Tuning C is
    # exactly what E10's ablation characterizes.
    sca = SparseCutAveraging(
        graph, partition=partition, config=AlgorithmAConfig(epoch_constant=1.0)
    )
    a_est = sca.averaging_time(workload, n_replicates=4, seed=2)
    table.add_row(["algorithm A (non-convex uplink swap)", a_est.estimate])

    print()
    print(table.render())

    result = sca.run(load, seed=3, target_ratio=1e-9)
    worst = float(np.max(np.abs(result.values - target)))
    print(f"\nfinal state under algorithm A: every machine within "
          f"{worst:.2e} jobs of the balanced load "
          f"(sum drift {result.sum_drift:.2e})")


if __name__ == "__main__":
    main()

"""Federated averaging across a chain of data centers (multi-cut extension).

Scenario: four data centers in a line (each a clique of machines; only
neighbouring centers share a peering link) must agree on a global metric —
say the fleet-wide mean request latency.  Every adjacent pair of centers
is a sparse cut of its own, so the paper's single-cut Algorithm A does not
apply directly; the library's multi-cut extension designates one swap edge
per peering link.

Run:  python examples/federation.py
"""

from __future__ import annotations

import numpy as np

from repro import VanillaGossip, estimate_averaging_time
from repro.core.multi_cut import MultiClusterAveraging
from repro.graphs.clustering import chain_of_cliques, spectral_clusters
from repro.util.tables import Table


def main() -> None:
    clique_size, n_centers = 32, 4
    graph, clusters = chain_of_cliques(clique_size, n_centers)
    print(f"fleet: {n_centers} data centers x {clique_size} machines, "
          f"{graph.n_edges} links ({n_centers - 1} peering links)")

    # Per-center baseline latencies (ms) + per-machine noise.
    rng = np.random.default_rng(21)
    center_latency = np.array([12.0, 19.0, 31.0, 16.0])
    latencies = center_latency[clusters.labels] + rng.normal(
        0.0, 1.5, size=graph.n_vertices
    )
    fleet_mean = float(latencies.mean())
    print(f"true fleet-wide mean latency: {fleet_mean:.2f} ms")

    # The operator does not know the topology labels; detect them.
    detected = spectral_clusters(graph, n_centers)
    sizes = sorted(detected.cluster_size(c) for c in range(n_centers))
    print(f"detected centers: {n_centers} clusters of sizes {sizes}")

    mca = MultiClusterAveraging(graph, clusters=detected)
    summary = mca.summary()
    print(f"per-link epochs: {summary['epoch_lengths']} "
          f"(swap gains are pairwise harmonic)")

    result = mca.run(latencies, seed=1, target_ratio=1e-8)
    print(f"multi-cut consensus: {result.values.mean():.2f} ms after "
          f"t = {result.duration:.1f}; every machine within "
          f"{np.max(np.abs(result.values - fleet_mean)):.1e} ms")

    workload = latencies - latencies.mean()
    vanilla = estimate_averaging_time(
        graph, VanillaGossip, workload, n_replicates=4, seed=2,
        max_time=10_000.0,
    )
    multi = estimate_averaging_time(
        graph, mca.build_algorithm, workload, n_replicates=4, seed=3,
        max_time=10_000.0,
    )
    table = Table(["scheme", "T_av"], title="fleet averaging time")
    table.add_row(["vanilla pairwise gossip", vanilla.estimate])
    table.add_row(["multi-cut algorithm A", multi.estimate])
    print()
    print(table.render())
    print(f"\nspeedup {vanilla.estimate / multi.estimate:.1f}x — one "
          f"non-convex swap edge per peering link removes every bottleneck "
          f"at once")


if __name__ == "__main__":
    main()

"""Cross-cutting invariants: artifacts round-trip, bounds hold on random instances."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.analysis.operators import sample_epoch_operators
from repro.analysis.bounds import theorem1_lower_bound
from repro.core.epochs import epoch_length_ticks
from repro.engine.simulator import simulate
from repro.algorithms.vanilla import VanillaGossip
from repro.experiments.reporting import save_report
from repro.experiments.specs import run_experiment
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import two_cliques, two_expanders
from repro.util.serialization import from_json_file


class TestArtifactRoundTrip:
    def test_experiment_json_is_loadable_and_complete(self, tmp_path):
        report = run_experiment("E7", scale="smoke")
        _, json_path = save_report(report, tmp_path)
        payload = from_json_file(json_path)
        assert payload["experiment_id"] == "E7"
        assert payload["all_checks_passed"] is True
        assert payload["tables"], "tables must be serialized"
        # Every check is a {name, passed, detail} record.
        for check in payload["checks"]:
            assert set(check) == {"name", "passed", "detail"}

    def test_rendered_text_and_json_agree_on_checks(self, tmp_path):
        report = run_experiment("E11", scale="smoke")
        text_path, json_path = save_report(report, tmp_path)
        text = text_path.read_text()
        payload = json.loads(json_path.read_text())
        for check in payload["checks"]:
            status = "PASS" if check["passed"] else "FAIL"
            assert f"[{status}] {check['name']}" in text


class TestEq12AcrossRandomInstances:
    """Eq. 12 (the true half of Lemma 1) must hold on every instance."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_operator_norm_at_most_n(self, seed):
        rng = np.random.default_rng(seed)
        n1 = int(rng.integers(4, 10))
        n2 = int(rng.integers(n1, 14))
        pair = two_cliques(n1, n2, n_bridges=1)
        epoch = epoch_length_ticks(pair.partition, constant=3.0)
        samples = sample_epoch_operators(
            pair.partition, epoch_length=epoch, n_epochs=5, seed=seed
        )
        n = pair.graph.n_vertices
        assert all(s.norm <= n + 1e-9 for s in samples)
        # The swap is the norm driver: the cross-cut imbalance direction
        # (fixed by mixing) maps to a post-swap spike of norm
        # ~sqrt(n1 n2 / n) (see DESIGN.md note F5).
        spike_floor = math.sqrt(n1 * n2 / (n1 + n2))
        assert max(s.norm for s in samples) >= 0.8 * spike_floor


class TestTheorem1OnRandomInstances:
    """Vanilla must respect the convex floor on every sampled instance."""

    @pytest.mark.parametrize("seed", [3, 4])
    def test_vanilla_above_bound(self, seed):
        rng = np.random.default_rng(seed)
        half = int(rng.integers(10, 20))
        pair = two_expanders(half, half, degree=4, n_bridges=1, seed=seed)
        x0 = cut_aligned(pair.partition)
        bound = theorem1_lower_bound(pair.partition)
        result = simulate(
            pair.graph, VanillaGossip(), x0, seed=seed,
            target_ratio=math.e**-2, max_time=200.0 * half,
        )
        assert result.stopped_by == "target_ratio"
        crossing = result.crossing(math.e**-2)
        assert crossing.first_below >= bound


class TestCrossingTrackerInvariants:
    def test_last_above_monotone_in_threshold(self, medium_dumbbell):
        """Smaller thresholds are crossed later: last_above must decrease
        as the threshold grows."""
        x0 = cut_aligned(medium_dumbbell.partition)
        result = simulate(
            medium_dumbbell.graph, VanillaGossip(), x0, seed=6,
            target_ratio=1e-8, thresholds=(0.5, 0.1, 0.02),
        )
        t_50 = result.crossing(0.5).last_above
        t_10 = result.crossing(0.1).last_above
        t_02 = result.crossing(0.02).last_above
        assert t_50 <= t_10 <= t_02

    def test_monotone_algorithm_first_equals_last(self, medium_dumbbell):
        x0 = cut_aligned(medium_dumbbell.partition)
        result = simulate(
            medium_dumbbell.graph, VanillaGossip(), x0, seed=7,
            target_ratio=1e-8, thresholds=(math.e**-2,),
        )
        crossing = result.crossing(math.e**-2)
        # For monotone variance the first dip below is final: the gap
        # between last_above and first_below is a single event.
        assert crossing.first_below >= crossing.last_above

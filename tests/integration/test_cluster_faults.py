"""Fault-injection scenarios for the cluster backend, end to end.

Every scenario runs a whole sweep (or the E3 acceptance sweep) through
:class:`~repro.engine.cluster.ClusterBackend` under an injected fault —
a worker killed mid-round, a dropped connection, duplicated result
delivery, a straggler — and asserts the two halves of the contract:

* the final :class:`~repro.engine.sweeps.SweepResult` artifact is
  **byte-identical** to a serial rerun (the reproducibility guarantee
  survives failure and recovery);
* the coordinator's reassignment/dedup/respawn counters match what the
  injected fault should have caused (the recovery machinery actually
  engaged — the run didn't just get lucky).

Builders and algorithm factories live at module level so they pickle to
worker processes.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms.vanilla import VanillaGossip
from repro.engine.backends import SerialBackend
from repro.engine.cluster import ClusterBackend, FaultPlan
from repro.engine.sweeps import (
    PointConfig,
    ReplicateBudget,
    SweepAxis,
    SweepRunner,
    SweepSpec,
)
from repro.graphs.topologies import complete_graph

pytestmark = pytest.mark.slow


def build_complete_point(*, n: int) -> PointConfig:
    return PointConfig(
        graph=complete_graph(int(n)),
        algorithm_factory=VanillaGossip,
        initial_values=[float(i) for i in range(int(n))],
        max_time=50.0,
        max_events=100_000,
    )


def small_spec() -> SweepSpec:
    return SweepSpec(
        name="faults",
        axes=(SweepAxis("n", (5, 6, 7)),),
        builder=build_complete_point,
    )


#: 3 points x 4 replicates = 12 work units in the first (only) round —
#: enough in-flight traffic that a worker dying after 2 results always
#: leaves specs to reassign.
BUDGET = ReplicateBudget.fixed(4)


def sweep_json(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def serial_reference():
    """One serial run of the fault sweep, shared by every scenario."""
    return SweepRunner(small_spec(), seed=11, budget=BUDGET).run()


def run_cluster_sweep(backend) -> "tuple[str, dict]":
    try:
        result = SweepRunner(
            small_spec(), seed=11, budget=BUDGET, backend=backend
        ).run()
        return sweep_json(result), dict(backend.stats)
    finally:
        backend.shutdown()


class TestFaultScenarios:
    def test_worker_killed_mid_round(self, serial_reference):
        """Crash (no goodbye) after 2 results: in-flight specs must be
        reassigned, the slot respawned, and the artifact unchanged."""
        backend = ClusterBackend(2, worker_faults=["die-after:2", None])
        payload, stats = run_cluster_sweep(backend)
        assert payload == sweep_json(serial_reference)
        assert stats["worker_failures"] >= 1
        assert stats["reassigned"] >= 1
        assert stats["respawns"] >= 1

    def test_connection_dropped_mid_round(self, serial_reference):
        """A network-style drop (socket closed, process exits cleanly)
        takes the same recovery path as a crash."""
        backend = ClusterBackend(2, worker_faults=["drop-after:1", None])
        payload, stats = run_cluster_sweep(backend)
        assert payload == sweep_json(serial_reference)
        assert stats["worker_failures"] >= 1
        assert stats["reassigned"] >= 1

    def test_duplicate_result_delivery_collapses(self, serial_reference):
        """A worker sending every result twice: at-least-once delivery
        must collapse to exactly-once in the coordinator."""
        backend = ClusterBackend(
            2, worker_faults=["duplicate-results", "duplicate-results"]
        )
        payload, stats = run_cluster_sweep(backend)
        assert payload == sweep_json(serial_reference)
        # Every one of the 12 results was delivered twice and none may
        # be double-counted.  The batch ends the instant the last unique
        # result lands, so each worker's final in-flight duplicate can
        # legitimately go unread — at most one per worker.
        assert 10 <= stats["duplicates_dropped"] <= 12
        assert stats["worker_failures"] == 0

    def test_straggler_not_declared_dead(self, serial_reference):
        """A slow worker keeps heartbeating while it computes: the
        coordinator must wait for it, not reassign its specs."""
        backend = ClusterBackend(
            2,
            worker_faults=[FaultPlan(slow=0.15), None],
            heartbeat_timeout=5.0,
        )
        payload, stats = run_cluster_sweep(backend)
        assert payload == sweep_json(serial_reference)
        assert stats["worker_failures"] == 0
        assert stats["reassigned"] == 0
        assert stats["duplicates_dropped"] == 0

    def test_full_fleet_loss_retried_at_round_level(self, serial_reference):
        """Everything dies mid-batch with no respawn budget: the backend
        raises a *retryable* error, the sweep scheduler re-runs the
        round against a fresh fleet, and the artifact is unchanged."""
        backend = ClusterBackend(
            1, worker_faults=["die-after:2"], max_respawns=0
        )
        try:
            runner = SweepRunner(
                small_spec(), seed=11, budget=BUDGET, backend=backend
            )
            result = runner.run()
            assert sweep_json(result) == sweep_json(serial_reference)
            assert runner.stats["round_retries"] >= 1
            assert backend.stats["worker_failures"] >= 1
        finally:
            backend.shutdown()


class TestAcceptanceE3ClusterSweep:
    """The PR's acceptance criterion, pinned as a regression test: the
    E3 smoke sweep on 2 local cluster workers produces a JSON artifact
    byte-identical (``cmp`` semantics: raw file bytes) to the serial
    rerun — including when one worker is killed mid-round."""

    BUDGET = ReplicateBudget.adaptive(
        target_ci=0.8, min_replicates=3, max_replicates=16, round_size=2
    )

    @pytest.fixture(scope="class")
    def e3_artifacts(self, tmp_path_factory):
        from repro.experiments.specs_sweeps import get_sweep

        base = tmp_path_factory.mktemp("e3")
        spec = get_sweep("E3", scale="smoke").with_axis("n", [16, 24])
        serial_path = SweepRunner(
            spec, seed=0, budget=self.BUDGET, backend=SerialBackend()
        ).run().save(base / "serial.json")
        return spec, serial_path

    def test_cluster_artifact_cmp_identical(self, e3_artifacts, tmp_path):
        spec, serial_path = e3_artifacts
        backend = ClusterBackend(2)
        try:
            path = SweepRunner(
                spec, seed=0, budget=self.BUDGET, backend=backend
            ).run().save(tmp_path / "cluster.json")
        finally:
            backend.shutdown()
        assert path.read_bytes() == serial_path.read_bytes()

    def test_cluster_artifact_cmp_identical_under_worker_kill(
        self, e3_artifacts, tmp_path
    ):
        spec, serial_path = e3_artifacts
        backend = ClusterBackend(2, worker_faults=["die-after:2", None])
        try:
            path = SweepRunner(
                spec, seed=0, budget=self.BUDGET, backend=backend
            ).run().save(tmp_path / "cluster-faulty.json")
            stats = dict(backend.stats)
        finally:
            backend.shutdown()
        assert path.read_bytes() == serial_path.read_bytes()
        assert stats["worker_failures"] >= 1
        assert stats["reassigned"] >= 1

"""Fault-injection scenarios for the cluster backend, end to end.

Every scenario runs a whole sweep (or the E3 acceptance sweep) through
:class:`~repro.engine.cluster.ClusterBackend` under an injected fault —
a worker killed mid-round, a dropped connection, duplicated result
delivery, a straggler — and asserts the two halves of the contract:

* the final :class:`~repro.engine.sweeps.SweepResult` artifact is
  **byte-identical** to a serial rerun (the reproducibility guarantee
  survives failure and recovery);
* the coordinator's reassignment/dedup/respawn counters match what the
  injected fault should have caused (the recovery machinery actually
  engaged — the run didn't just get lucky).

Builders and algorithm factories live at module level so they pickle to
worker processes.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.algorithms.vanilla import VanillaGossip
from repro.engine.backends import SerialBackend
from repro.engine.cluster import ClusterBackend, FaultPlan, run_worker
from repro.engine.sweeps import (
    PointConfig,
    ReplicateBudget,
    SweepAxis,
    SweepRunner,
    SweepSpec,
)
from repro.graphs.topologies import complete_graph

pytestmark = pytest.mark.slow


def build_complete_point(*, n: int) -> PointConfig:
    return PointConfig(
        graph=complete_graph(int(n)),
        algorithm_factory=VanillaGossip,
        initial_values=[float(i) for i in range(int(n))],
        max_time=50.0,
        max_events=100_000,
    )


def small_spec() -> SweepSpec:
    return SweepSpec(
        name="faults",
        axes=(SweepAxis("n", (5, 6, 7)),),
        builder=build_complete_point,
    )


#: 3 points x 4 replicates = 12 work units in the first (only) round —
#: enough in-flight traffic that a worker dying after 2 results always
#: leaves specs to reassign.
BUDGET = ReplicateBudget.fixed(4)


def sweep_json(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def serial_reference():
    """One serial run of the fault sweep, shared by every scenario."""
    return SweepRunner(small_spec(), seed=11, budget=BUDGET).run()


def run_cluster_sweep(backend) -> "tuple[str, dict]":
    try:
        result = SweepRunner(
            small_spec(), seed=11, budget=BUDGET, backend=backend
        ).run()
        return sweep_json(result), dict(backend.stats)
    finally:
        backend.shutdown()


class TestFaultScenarios:
    def test_worker_killed_mid_round(self, serial_reference):
        """Crash (no goodbye) after 2 results: in-flight specs must be
        reassigned, the slot respawned, and the artifact unchanged."""
        backend = ClusterBackend(2, worker_faults=["die-after:2", None])
        payload, stats = run_cluster_sweep(backend)
        assert payload == sweep_json(serial_reference)
        assert stats["worker_failures"] >= 1
        assert stats["reassigned"] >= 1
        assert stats["respawns"] >= 1

    def test_connection_dropped_mid_round(self, serial_reference):
        """A network-style drop (socket closed, process exits cleanly)
        takes the same recovery path as a crash."""
        backend = ClusterBackend(2, worker_faults=["drop-after:1", None])
        payload, stats = run_cluster_sweep(backend)
        assert payload == sweep_json(serial_reference)
        assert stats["worker_failures"] >= 1
        assert stats["reassigned"] >= 1

    def test_duplicate_result_delivery_collapses(self, serial_reference):
        """A worker sending every result twice: at-least-once delivery
        must collapse to exactly-once in the coordinator."""
        backend = ClusterBackend(
            2, worker_faults=["duplicate-results", "duplicate-results"]
        )
        payload, stats = run_cluster_sweep(backend)
        assert payload == sweep_json(serial_reference)
        # Every one of the 12 results was delivered twice and none may
        # be double-counted.  The batch ends the instant the last unique
        # result lands, so each worker's final in-flight duplicate can
        # legitimately go unread — at most one per worker.
        assert 10 <= stats["duplicates_dropped"] <= 12
        assert stats["worker_failures"] == 0

    def test_straggler_not_declared_dead(self, serial_reference):
        """A slow worker keeps heartbeating while it computes: the
        coordinator must wait for it, not reassign its specs."""
        backend = ClusterBackend(
            2,
            worker_faults=[FaultPlan(slow=0.15), None],
            heartbeat_timeout=5.0,
        )
        payload, stats = run_cluster_sweep(backend)
        assert payload == sweep_json(serial_reference)
        assert stats["worker_failures"] == 0
        assert stats["reassigned"] == 0
        assert stats["duplicates_dropped"] == 0

    def test_full_fleet_loss_retried_at_round_level(self, serial_reference):
        """Everything dies mid-batch with no respawn budget: the backend
        raises a *retryable* error, the sweep scheduler re-runs the
        round against a fresh fleet, and the artifact is unchanged."""
        backend = ClusterBackend(
            1, worker_faults=["die-after:2"], max_respawns=0
        )
        try:
            runner = SweepRunner(
                small_spec(), seed=11, budget=BUDGET, backend=backend
            )
            result = runner.run()
            assert sweep_json(result) == sweep_json(serial_reference)
            assert runner.stats["round_retries"] >= 1
            assert backend.stats["worker_failures"] >= 1
        finally:
            backend.shutdown()


class TestElasticMembership:
    """Membership churn mid-sweep: joins, drains, flaps, auth — each
    scenario must leave the artifact byte-identical to serial and the
    coordinator's membership counters must show the churn happened."""

    def test_late_external_worker_joins_mid_sweep(self, serial_reference):
        """Two externally attached workers, one joining ~0.8s late: the
        coordinator integrates it into the batch in flight."""
        backend = ClusterBackend(2, spawn_workers=False)
        host, port = backend.address
        codes: "dict[str, int]" = {}

        def attach(name: str, fault: FaultPlan) -> None:
            codes[name] = run_worker(
                host,
                port,
                fault=fault,
                heartbeat_interval=0.2,
                max_reconnects=0,
            )

        threads = [
            threading.Thread(
                target=attach,
                args=("steady", FaultPlan(slow=0.15)),
                daemon=True,
            ),
            threading.Thread(
                target=attach,
                args=("late", FaultPlan(slow_start=0.8)),
                daemon=True,
            ),
        ]
        for thread in threads:
            thread.start()
        payload, stats = run_cluster_sweep(backend)
        for thread in threads:
            thread.join(timeout=10)
        assert payload == sweep_json(serial_reference)
        assert stats["external_joins"] == 2
        assert stats["worker_failures"] == 0
        assert codes == {"steady": 0, "late": 0}

    def test_graceful_drain_mid_sweep(self, serial_reference):
        """A worker draining after 3 results is a scale-down event, not
        a failure: goodbye, requeue, free replacement spawn."""
        backend = ClusterBackend(2, worker_faults=["drain-after:3", None])
        payload, stats = run_cluster_sweep(backend)
        assert payload == sweep_json(serial_reference)
        assert stats["drains"] >= 1
        assert stats["worker_failures"] == 0
        assert stats["respawns"] == 0  # the replacement was free

    def test_reconnect_with_backoff_mid_sweep(self, serial_reference):
        """A WAN flap: the worker reconnects with jittered backoff and
        resumes its identity from the coordinator's grace stash."""
        backend = ClusterBackend(
            2,
            worker_faults=["disconnect-after:2", "slow:0.1"],
            worker_reconnect_backoff=0.05,
        )
        payload, stats = run_cluster_sweep(backend)
        assert payload == sweep_json(serial_reference)
        assert stats["reconnects"] >= 1
        assert stats["worker_failures"] >= 1

    def test_tokenless_worker_rejected_mid_sweep(self, serial_reference):
        """A keyed coordinator with its spawned (keyed) fleet completes
        the sweep while a tokenless intruder is turned away before any
        of its bytes are unpickled."""
        backend = ClusterBackend(2, auth_token="sweep-secret")
        host, port = backend.address
        codes: "dict[str, int]" = {}

        def intrude() -> None:
            codes["intruder"] = run_worker(
                host,
                port,
                heartbeat_interval=0.2,
                auth_token="",
                max_reconnects=0,
            )

        thread = threading.Thread(target=intrude, daemon=True)
        thread.start()
        payload, stats = run_cluster_sweep(backend)
        thread.join(timeout=15)
        assert payload == sweep_json(serial_reference)
        assert codes.get("intruder") == 3
        assert stats["auth_rejected"] >= 1
        assert stats["worker_failures"] == 0


#: Multi-round budget for the crash/resume scenario: an unreachable CI
#: target forces every point through three rounds, so there is always a
#: later round for the coordinator to die in.
RESUME_BUDGET = ReplicateBudget.adaptive(
    target_ci=0.05, min_replicates=3, max_replicates=9, round_size=3
)


class _CrashingClusterBackend(ClusterBackend):
    """Raises after the first completed batch — an in-process stand-in
    for the coordinator host dying between sweep rounds."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.batches_completed = 0

    def _maybe_crash(self) -> None:
        if self.batches_completed >= 1:
            raise RuntimeError("simulated coordinator crash")

    def execute(self, specs):
        self._maybe_crash()
        out = super().execute(specs)
        self.batches_completed += 1
        return out

    def execute_shared(self, specs, shared_state):
        self._maybe_crash()
        out = super().execute_shared(specs, shared_state)
        self.batches_completed += 1
        return out


class TestCoordinatorCrashResume:
    def test_crash_then_checkpoint_resume_is_byte_identical(self, tmp_path):
        """Kill the coordinator after round 1; resume from the checkpoint
        with a fresh fleet.  The resumed run restores the interrupted
        points' sample prefixes and the final artifact is byte-identical
        to an uninterrupted serial run."""
        spec = small_spec()
        serial_path = (
            SweepRunner(spec, seed=11, budget=RESUME_BUDGET)
            .run()
            .save(tmp_path / "serial.json")
        )
        ckpt = tmp_path / "ckpt.json"
        crashing = _CrashingClusterBackend(2)
        with pytest.raises(RuntimeError, match="simulated coordinator crash"):
            try:
                SweepRunner(
                    spec,
                    seed=11,
                    budget=RESUME_BUDGET,
                    backend=crashing,
                    checkpoint_path=ckpt,
                ).run()
            finally:
                crashing.shutdown()
        assert ckpt.exists()  # round 1 was checkpointed before the crash
        fresh = ClusterBackend(2)
        try:
            runner = SweepRunner(
                spec,
                seed=11,
                budget=RESUME_BUDGET,
                backend=fresh,
                checkpoint_path=ckpt,
            )
            resumed_path = runner.run().save(tmp_path / "resumed.json")
        finally:
            fresh.shutdown()
        assert runner.stats["replicates_resumed"] > 0
        assert resumed_path.read_bytes() == serial_path.read_bytes()


class TestAcceptanceE3ClusterSweep:
    """The PR's acceptance criterion, pinned as a regression test: the
    E3 smoke sweep on 2 local cluster workers produces a JSON artifact
    byte-identical (``cmp`` semantics: raw file bytes) to the serial
    rerun — including when one worker is killed mid-round."""

    BUDGET = ReplicateBudget.adaptive(
        target_ci=0.8, min_replicates=3, max_replicates=16, round_size=2
    )

    @pytest.fixture(scope="class")
    def e3_artifacts(self, tmp_path_factory):
        from repro.experiments.specs_sweeps import get_sweep

        base = tmp_path_factory.mktemp("e3")
        spec = get_sweep("E3", scale="smoke").with_axis("n", [16, 24])
        serial_path = SweepRunner(
            spec, seed=0, budget=self.BUDGET, backend=SerialBackend()
        ).run().save(base / "serial.json")
        return spec, serial_path

    def test_cluster_artifact_cmp_identical(self, e3_artifacts, tmp_path):
        spec, serial_path = e3_artifacts
        backend = ClusterBackend(2)
        try:
            path = SweepRunner(
                spec, seed=0, budget=self.BUDGET, backend=backend
            ).run().save(tmp_path / "cluster.json")
        finally:
            backend.shutdown()
        assert path.read_bytes() == serial_path.read_bytes()

    def test_cluster_artifact_cmp_identical_under_worker_kill(
        self, e3_artifacts, tmp_path
    ):
        spec, serial_path = e3_artifacts
        backend = ClusterBackend(2, worker_faults=["die-after:2", None])
        try:
            path = SweepRunner(
                spec, seed=0, budget=self.BUDGET, backend=backend
            ).run().save(tmp_path / "cluster-faulty.json")
            stats = dict(backend.stats)
        finally:
            backend.shutdown()
        assert path.read_bytes() == serial_path.read_bytes()
        assert stats["worker_failures"] >= 1
        assert stats["reassigned"] >= 1

    def test_cluster_artifact_cmp_identical_under_membership_churn(
        self, e3_artifacts, tmp_path
    ):
        """The elasticity acceptance criterion: one worker joins late
        and flaps once (reconnecting with backoff), the other drains
        gracefully mid-sweep and is replaced — the artifact still
        matches serial byte for byte.

        A fixed budget keeps the whole sweep in one long round, so the
        flapped worker's reconnect is guaranteed to land while the batch
        is still in flight (the adaptive budget can settle before the
        backoff elapses)."""
        spec, _ = e3_artifacts
        budget = ReplicateBudget.fixed(10)
        serial_path = (
            SweepRunner(spec, seed=0, budget=budget, backend=SerialBackend())
            .run()
            .save(tmp_path / "serial-churn.json")
        )
        backend = ClusterBackend(
            2,
            worker_faults=[
                "slow-start:0.5,disconnect-after:2",
                "drain-after:3",
            ],
            worker_reconnect_backoff=0.05,
        )
        try:
            path = SweepRunner(
                spec, seed=0, budget=budget, backend=backend
            ).run().save(tmp_path / "cluster-churn.json")
            stats = dict(backend.stats)
        finally:
            backend.shutdown()
        assert path.read_bytes() == serial_path.read_bytes()
        assert stats["drains"] >= 1
        assert stats["reconnects"] >= 1
        assert stats["worker_failures"] >= 1  # the flap itself

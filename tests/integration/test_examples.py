"""Integration: the example scripts run end to end and say what they should."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


def test_quickstart_small():
    out = run_example("quickstart.py", "32")
    assert "vanilla gossip" in out
    assert "algorithm A" in out
    assert "speedup" in out
    assert "converged to 15.5000" in out


def test_sensor_fusion():
    out = run_example("sensor_fusion.py")
    assert "detected cut" in out
    assert "consensus 19.4" in out
    assert "faster across the backbone bottleneck" in out


def test_load_balancing():
    out = run_example("load_balancing.py")
    assert "drain time comparison" in out
    assert "algorithm A (non-convex uplink swap)" in out
    assert "within" in out


def test_custom_algorithm():
    out = run_example("custom_algorithm.py")
    assert "registered custom algorithm: greedy-cut-pump" in out
    assert "Theorem 1 in action" in out


def test_federation():
    out = run_example("federation.py")
    assert "detected centers: 4 clusters" in out
    assert "multi-cut consensus: 19.5" in out
    assert "speedup" in out

"""Integration: every experiment runs at smoke scale with all checks green."""

from __future__ import annotations

import pytest

from repro.experiments.cli import main
from repro.experiments.specs import EXPERIMENTS, run_experiment


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_experiment_smoke_passes(experiment_id):
    report = run_experiment(experiment_id, scale="smoke")
    failed = [c for c in report.checks if not c.passed]
    assert not failed, (
        f"{experiment_id} failed checks: "
        + "; ".join(f"{c.name} ({c.detail})" for c in failed)
    )
    assert report.tables, "every experiment must regenerate a table"
    rendered = report.render()
    assert report.experiment_id in rendered


def test_cli_runs_single_experiment(tmp_path, capsys):
    exit_code = main(["run", "E6", "--scale", "smoke", "--out", str(tmp_path)])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "E6" in captured.out
    assert (tmp_path / "e6.txt").exists()
    assert (tmp_path / "e6.json").exists()


def test_cli_workers_flag_sets_env_and_reproduces_serial(
    monkeypatch, capsys
):
    """--workers must parallelize via REPRO_WORKERS without changing
    any measured number (the backend reproducibility guarantee)."""
    import os

    from repro.engine.backends import WORKERS_ENV_VAR

    # setenv (not delenv) so monkeypatch restores the pre-test state even
    # though main() writes to os.environ itself; "1" means serial.
    monkeypatch.setenv(WORKERS_ENV_VAR, "1")

    def run(argv):
        assert main(argv) == 0
        return capsys.readouterr().out

    from repro.engine.backends import _SHARED_PROCESS_BACKENDS

    pools_before = set(_SHARED_PROCESS_BACKENDS)
    serial_out = run(["run", "E3", "--scale", "smoke"])
    parallel_out = run(["run", "E3", "--scale", "smoke", "--workers", "2"])
    # main() restores the pre-run value and releases the worker pools it
    # created (and only those), so programmatic calls leave no trace.
    assert os.environ.get(WORKERS_ENV_VAR) == "1"
    assert set(_SHARED_PROCESS_BACKENDS) == pools_before
    assert serial_out == parallel_out

    assert main(["run", "E3", "--workers", "0"]) == 2


def test_cli_sweep_runs_and_saves_artifact(tmp_path, capsys):
    """The sweep subcommand: axis overrides, fixed budget, JSON artifact."""
    exit_code = main([
        "sweep", "E3", "--scale", "smoke",
        "--axis", "n=16,24", "--axis", "algorithm=vanilla",
        "--replicates", "2", "--out", str(tmp_path),
    ])
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "sweep E3" in captured.out
    assert (tmp_path / "sweep_e3.json").exists()

    from repro.engine.sweeps import SweepResult

    result = SweepResult.load(tmp_path / "sweep_e3.json")
    assert result.n_points == 2
    assert all(p.n_replicates == 2 for p in result.points)


@pytest.mark.slow
def test_cli_sweep_workers_reproduce_serial(tmp_path, capsys):
    """--workers must not change a single byte of the sweep artifact."""
    from repro.engine.backends import _SHARED_PROCESS_BACKENDS

    argv = [
        "sweep", "E3", "--scale", "smoke",
        "--axis", "n=16,24,32", "--axis", "algorithm=vanilla",
        "--target-ci", "0.8", "--min-replicates", "3",
        "--max-replicates", "8",
    ]
    pools_before = set(_SHARED_PROCESS_BACKENDS)
    assert main(argv + ["--out", str(tmp_path / "serial")]) == 0
    assert main(argv + ["--out", str(tmp_path / "pooled"),
                        "--workers", "2"]) == 0
    capsys.readouterr()
    # Programmatic main() must release the worker pools it created.
    assert set(_SHARED_PROCESS_BACKENDS) == pools_before
    serial = (tmp_path / "serial" / "sweep_e3.json").read_text()
    pooled = (tmp_path / "pooled" / "sweep_e3.json").read_text()
    assert serial == pooled


def test_cli_sweep_checkpoint_resume(tmp_path, capsys):
    """A finished checkpoint makes the rerun a pure read."""
    argv = [
        "sweep", "E3", "--scale", "smoke", "--axis", "n=16",
        "--axis", "algorithm=vanilla", "--replicates", "2",
        "--checkpoint", str(tmp_path / "ckpt.json"),
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "1 points resumed" in second
    assert first.splitlines()[:5] == second.splitlines()[:5]  # same table


def test_cli_sweep_rejects_bad_input(capsys):
    assert main(["sweep", "E99"]) == 2
    assert "no sweep declared" in capsys.readouterr().err
    assert main(["sweep", "E3", "--axis", "bogus"]) == 2
    assert "--axis expects" in capsys.readouterr().err
    assert main(["sweep", "E3", "--workers", "0"]) == 2
    capsys.readouterr()


def test_cli_reports_failure_exit_code(monkeypatch, capsys):
    """A failing check must surface as a non-zero exit code."""
    from repro.experiments import specs
    from repro.experiments.harness import ExperimentReport

    def fake_experiment(scale=None, seed=0):
        report = ExperimentReport("E1", "t", "c")
        report.add_check("x", False, "boom")
        return report

    monkeypatch.setitem(specs.EXPERIMENTS, "E1", fake_experiment)
    assert main(["run", "E1", "--scale", "smoke"]) == 1
    capsys.readouterr()

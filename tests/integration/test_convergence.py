"""Integration: every algorithm converges end-to-end on small instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.convex import ConvexGossip, RandomConvexGossip
from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.push_sum import PushSumGossip
from repro.algorithms.two_timescale import TwoTimescaleGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.engine.simulator import simulate
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import dumbbell_graph, two_erdos_renyi, two_grids


@pytest.fixture(scope="module")
def instance():
    pair = dumbbell_graph(16)
    return pair, cut_aligned(pair.partition)


def algorithm_cases(pair):
    return [
        VanillaGossip(),
        ConvexGossip(0.7),
        RandomConvexGossip(0.2, 0.8),
        TwoTimescaleGossip(pair.partition, slow_step=0.25),
        PushSumGossip(),
        NonConvexSparseCutGossip(pair.partition, epoch_length=3),
        NonConvexSparseCutGossip(
            pair.partition, epoch_length=3, oracle_means=True
        ),
    ]


class TestEverythingConverges:
    def test_all_algorithms_reach_consensus(self, instance):
        pair, x0 = instance
        for algorithm in algorithm_cases(pair):
            result = simulate(
                pair.graph, algorithm, x0, seed=11,
                target_ratio=1e-8, max_time=5_000.0,
            )
            assert result.stopped_by == "target_ratio", algorithm.name
            assert np.allclose(
                result.values, x0.mean(), atol=1e-3
            ), algorithm.name

    def test_sum_conserving_algorithms_hold_the_mean(self, instance):
        pair, x0 = instance
        for algorithm in algorithm_cases(pair):
            if not algorithm.conserves_sum:
                continue
            result = simulate(
                pair.graph, algorithm, x0, seed=13,
                target_ratio=1e-8, max_time=5_000.0,
            )
            assert result.sum_drift < 1e-6, algorithm.name

    def test_convergence_on_er_pair(self):
        pair = two_erdos_renyi(12, 14, n_bridges=2, seed=3)
        x0 = cut_aligned(pair.partition)
        algo = NonConvexSparseCutGossip(pair.partition, epoch_length=2)
        result = simulate(pair.graph, algo, x0, seed=1, target_ratio=1e-8,
                          max_time=10_000.0)
        assert result.stopped_by == "target_ratio"

    def test_convergence_on_grid_pair(self):
        pair = two_grids(3, 4, n_bridges=1)
        x0 = cut_aligned(pair.partition)
        from repro.core.epochs import epoch_length_ticks

        epoch = epoch_length_ticks(pair.partition, constant=3.0)
        algo = NonConvexSparseCutGossip(pair.partition, epoch_length=epoch)
        result = simulate(pair.graph, algo, x0, seed=2, target_ratio=1e-6,
                          max_time=50_000.0)
        assert result.stopped_by == "target_ratio"

    def test_nonuniform_initial_values_converge_to_true_mean(self, instance):
        pair, _ = instance
        rng = np.random.default_rng(5)
        x0 = rng.exponential(3.0, size=16)  # non-zero-mean, skewed
        algo = NonConvexSparseCutGossip(pair.partition, epoch_length=3)
        result = simulate(pair.graph, algo, x0, seed=3, target_ratio=1e-10,
                          max_time=5_000.0)
        assert result.values.mean() == pytest.approx(x0.mean(), rel=1e-9)
        assert np.allclose(result.values, x0.mean(), atol=1e-4)

"""Integration: the ``verify-claims`` drift gate end to end.

The CI contract, exercised through the real CLI: a fresh store is
seeded by the gate itself (compute-through-store), a rerun is a pure
read (``--no-compute``), missing data is a clean exit 2 with the
seeding command, and *injected drift* — stored numbers perturbed out
of tolerance — flips the exit code to 1.
"""

from __future__ import annotations

import json

import pytest

from repro.engine.store import ResultsStore
from repro.engine.sweeps import SweepResult
from repro.experiments.cli import main
from repro.reports.claims import CLAIMS_SCHEMA

E3_CLAIMS = "E3-speedup,E6-dominance"


@pytest.fixture(autouse=True)
def _no_ambient_store(monkeypatch):
    monkeypatch.delenv("REPRO_STORE", raising=False)


def test_gate_seeds_verifies_and_rereads(tmp_path, capsys):
    db = tmp_path / "claims.sqlite"
    out = tmp_path / "bundle"

    # First pass computes through the store and writes the bundle.
    assert main([
        "verify-claims", "--scale", "smoke", "--claims", E3_CLAIMS,
        "--store", str(db), "--out", str(out),
    ]) == 0
    stdout = capsys.readouterr().out
    assert "PASS" in stdout and "FAIL" not in stdout
    assert "2/2 passed" in stdout

    bundle = json.loads((out / "claims.json").read_text())
    assert bundle["schema"] == CLAIMS_SCHEMA
    assert bundle["passed"] is True
    assert [c["claim_id"] for c in bundle["claims"]] == E3_CLAIMS.split(",")
    assert (out / "claims.txt").read_text().startswith("claims")
    assert (out / "sweep_e3.json").exists()

    # Second pass must resolve purely from recorded data.
    assert main([
        "verify-claims", "--scale", "smoke", "--claims", E3_CLAIMS,
        "--store", str(db), "--no-compute",
    ]) == 0
    capsys.readouterr()
    assert len(ResultsStore(db).runs(sweep_name="E3", status="done")) == 1


def test_gate_without_data_exits_two_with_seeding_hint(tmp_path, capsys):
    assert main([
        "verify-claims", "--scale", "smoke", "--claims", "E3-speedup",
        "--store", str(tmp_path / "empty.sqlite"), "--no-compute",
    ]) == 2
    err = capsys.readouterr().err
    assert "repro-experiments sweep E3 --scale smoke --seed 13" in err


def test_injected_drift_flips_the_gate(tmp_path, capsys):
    out = tmp_path / "bundle"
    assert main([
        "verify-claims", "--scale", "smoke", "--claims", "E3-speedup",
        "--out", str(out),
    ]) == 0
    capsys.readouterr()

    # Drift fixture: inflate Algorithm A's stored times tenfold — the
    # configuration identity (and so the artifact fingerprint) is
    # unchanged, only the measured values drift.
    drift = tmp_path / "drift"
    drift.mkdir()
    payload = SweepResult.load(out / "sweep_e3.json").to_dict()
    for point in payload["points"]:
        if point["params"]["algorithm"] == "algorithm_a":
            point["estimate"] *= 10.0
    SweepResult.from_dict(payload).save(drift / "sweep_e3.json")

    assert main([
        "verify-claims", "--scale", "smoke", "--claims", "E3-speedup",
        "--artifacts", str(drift), "--no-compute",
    ]) == 1
    stdout = capsys.readouterr().out
    assert "FAIL" in stdout
    assert "0/1 passed" in stdout


def test_unknown_claim_id_exits_two(capsys):
    assert main(["verify-claims", "--claims", "bogus"]) == 2
    assert "unknown claim ids" in capsys.readouterr().err


def test_run_with_store_records_and_reuses_sweeps(tmp_path, capsys):
    db = tmp_path / "runs.sqlite"
    assert main(["run", "E1", "--scale", "smoke", "--store", str(db)]) == 0
    capsys.readouterr()
    store = ResultsStore(db)
    assert len(store.runs(sweep_name="E1", status="done")) == 1
    # A rerun resolves from the store instead of recording a second row.
    assert main(["run", "E1", "--scale", "smoke", "--store", str(db)]) == 0
    capsys.readouterr()
    assert len(store.runs(sweep_name="E1", status="done")) == 1

"""Integration: the sweep service and the store-backed CLI, end to end.

The acceptance bar from the results-store work: submit → poll → fetch
over real HTTP against a live backend; resubmitting an identical sweep
is a cache hit that performs zero simulation work and serves bytes
``cmp``-identical to the artifact a direct run writes.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.engine.backends import shutdown_shared_backends
from repro.engine.store import ResultsStore, canonical_result_text
from repro.engine.service import SweepService
from repro.experiments.cli import main

SMOKE_SUBMISSION = {
    "sweep_id": "E3",
    "scale": "smoke",
    "axes": {"n": [12], "algorithm": ["vanilla"]},
    "budget": {"replicates": 2},
    "seed": 0,
}


@pytest.fixture(autouse=True)
def _release_shared_pools():
    yield
    shutdown_shared_backends()


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.load(response)


def _post(url: str, payload: dict) -> "tuple[int, dict]":
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def _poll_done(base: str, run_id: str, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        run = _get(f"{base}/v1/runs/{run_id}")
        if run["status"] in ("done", "failed"):
            return run
        time.sleep(0.2)
    raise AssertionError(f"run {run_id} did not settle within {timeout}s")


def _fetch_bytes(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.read()


class TestServiceRoundTrip:
    def test_submit_poll_fetch_and_cached_resubmit(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        with SweepService(store, backend="serial") as service:
            base = service.url

            health = _get(f"{base}/v1/healthz")
            assert health["status"] == "ok"
            assert health["backend"] == "serial"

            status, first = _post(f"{base}/v1/sweeps", SMOKE_SUBMISSION)
            assert status == 202
            assert first["cache_hit"] is False
            run_id = first["run_id"]

            settled = _poll_done(base, run_id)
            assert settled["status"] == "done", settled.get("error")
            assert settled["n_points"] == 1
            assert settled["total_replicates"] == 2

            body = _fetch_bytes(f"{base}/v1/runs/{run_id}/result")
            result = store.load_result(run_id)
            assert body.decode("utf-8") == canonical_result_text(result)

            envelope = _get(f"{base}/v1/runs/{run_id}/envelope")
            assert envelope["run"]["run_id"] == run_id

            status, again = _post(f"{base}/v1/sweeps", SMOKE_SUBMISSION)
            assert status == 200
            assert again["cache_hit"] is True
            assert again["run_id"] == run_id
            assert again["status"] == "done"

            listing = _get(f"{base}/v1/runs?sweep=E3")
            assert [run["run_id"] for run in listing["runs"]] == [run_id]

    def test_bad_requests_are_clean_http_errors(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        with SweepService(store, backend="serial") as service:
            base = service.url
            status, body = _post(f"{base}/v1/sweeps", {"sweep_id": "NOPE"})
            assert status == 400
            assert "NOPE" in body["error"]
            status, body = _post(
                f"{base}/v1/sweeps", {**SMOKE_SUBMISSION, "backend": "x"}
            )
            assert status == 400
            assert "backend" in body["error"]
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{base}/v1/runs/absent-000000000000")
            assert excinfo.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{base}/v1/nope")
            assert excinfo.value.code == 404

    def test_result_of_unfinished_run_is_conflict(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        run, _ = store.begin_run("f" * 64, "E3")
        with SweepService(store, backend="serial") as service:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{service.url}/v1/runs/{run.run_id}/result")
            assert excinfo.value.code == 409


@pytest.mark.slow
class TestServiceOnClusterBackend:
    def test_round_trip_against_a_live_worker_fleet(self, tmp_path):
        """The service drives the cluster backend as a long-lived fleet:
        one backend instance spans both submissions, the second of which
        is served from the store without touching the fleet."""
        from repro.engine.cluster import ClusterBackend

        store = ResultsStore(tmp_path / "store.sqlite")
        backend = ClusterBackend(2)
        with SweepService(store, backend=backend) as service:
            base = service.url
            assert _get(f"{base}/v1/healthz")["backend"] == "cluster"

            status, first = _post(f"{base}/v1/sweeps", SMOKE_SUBMISSION)
            assert status == 202
            settled = _poll_done(base, first["run_id"])
            assert settled["status"] == "done", settled.get("error")
            cluster_bytes = _fetch_bytes(
                f"{base}/v1/runs/{first['run_id']}/result"
            )

            status, again = _post(f"{base}/v1/sweeps", SMOKE_SUBMISSION)
            assert status == 200 and again["cache_hit"] is True

        # Byte identity across backends: the cluster-computed result is
        # cmp-identical to a serial run of the same submission.
        serial_store = ResultsStore(tmp_path / "serial.sqlite")
        with SweepService(serial_store, backend="serial") as service:
            base = service.url
            _, run = _post(f"{base}/v1/sweeps", SMOKE_SUBMISSION)
            _poll_done(base, run["run_id"])
            serial_bytes = _fetch_bytes(
                f"{base}/v1/runs/{run['run_id']}/result"
            )
        assert cluster_bytes == serial_bytes


class TestStoreCliSweep:
    def test_second_cli_run_is_a_cache_hit_with_identical_artifacts(
        self, tmp_path, capsys
    ):
        db = tmp_path / "store.sqlite"
        out_first = tmp_path / "first"
        out_second = tmp_path / "second"
        argv = [
            "sweep", "E3", "--scale", "smoke",
            "--axis", "n=12", "--axis", "algorithm=vanilla",
            "--replicates", "2", "--store", str(db),
        ]
        assert main(argv + ["--out", str(out_first)]) == 0
        first = capsys.readouterr().out
        assert "store: recorded run" in first

        assert main(argv + ["--out", str(out_second)]) == 0
        second = capsys.readouterr().out
        assert "cache hit" in second
        assert "zero simulation work" in second

        (artifact_a,) = sorted(out_first.glob("sweep_e3_*.json"))
        (artifact_b,) = sorted(out_second.glob("sweep_e3_*.json"))
        assert artifact_a.name == artifact_b.name
        assert artifact_a.read_bytes() == artifact_b.read_bytes()

    def test_serve_command_smoke(self, tmp_path, capsys):
        """--for-seconds gives the serve command a bounded smoke mode."""
        db = tmp_path / "store.sqlite"
        import threading

        rc = []
        thread = threading.Thread(
            target=lambda: rc.append(
                main(["serve", "--store", str(db), "--port", "0",
                      "--for-seconds", "1.5"])
            )
        )
        thread.start()
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert rc == [0]

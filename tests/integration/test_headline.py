"""Integration: the paper's headline separation, asserted end-to-end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.vanilla import VanillaGossip
from repro.analysis.bounds import theorem1_lower_bound
from repro.core.sparse_cut_averaging import SparseCutAveraging
from repro.engine.averaging_time import estimate_averaging_time
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import dumbbell_graph


class TestHeadline:
    @pytest.fixture(scope="class")
    def measured(self):
        pair = dumbbell_graph(64)
        x0 = cut_aligned(pair.partition)
        vanilla = estimate_averaging_time(
            pair.graph, VanillaGossip, x0, n_replicates=5, seed=1,
            max_time=2_000.0,
        )
        sca = SparseCutAveraging(pair.graph, partition=pair.partition)
        algorithm_a = sca.averaging_time(x0, n_replicates=5, seed=2)
        return pair, vanilla, algorithm_a

    def test_vanilla_respects_theorem1(self, measured):
        pair, vanilla, _ = measured
        assert vanilla.estimate >= theorem1_lower_bound(pair.partition)

    def test_algorithm_a_beats_vanilla_by_a_wide_margin(self, measured):
        _, vanilla, algorithm_a = measured
        assert not algorithm_a.is_censored
        assert vanilla.estimate / algorithm_a.estimate >= 5.0

    def test_speedup_grows_with_n(self):
        speedups = []
        for n in (32, 96):
            pair = dumbbell_graph(n)
            x0 = cut_aligned(pair.partition)
            vanilla = estimate_averaging_time(
                pair.graph, VanillaGossip, x0, n_replicates=4, seed=3,
                max_time=3_000.0,
            )
            sca = SparseCutAveraging(pair.graph, partition=pair.partition)
            a_est = sca.averaging_time(x0, n_replicates=4, seed=4)
            speedups.append(vanilla.estimate / a_est.estimate)
        assert speedups[1] > speedups[0]

    def test_auto_detection_equals_planted_performance(self):
        """End-to-end with NO partition given: detect, configure, win."""
        pair = dumbbell_graph(48)
        x0 = cut_aligned(pair.partition)
        sca = SparseCutAveraging(pair.graph)  # detection path
        result = sca.run(x0, seed=5, target_ratio=1e-8)
        assert result.stopped_by == "target_ratio"
        assert np.allclose(result.values, 0.0, atol=1e-3)
        assert sca.partition.cut_size == 1

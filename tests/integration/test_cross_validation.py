"""Cross-validation against networkx as an independent oracle.

networkx is deliberately used nowhere in the library; here it checks our
graph algorithms, spectra and generators from the outside.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs.composites import dumbbell_graph
from repro.graphs.cuts import fiedler_sweep_cut
from repro.graphs.graph import Graph
from repro.graphs.properties import diameter
from repro.graphs.spectral import algebraic_connectivity, laplacian_matrix
from repro.graphs.topologies import (
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    random_regular_graph,
)


def to_networkx(graph: Graph) -> "nx.Graph":
    out = nx.Graph()
    out.add_nodes_from(range(graph.n_vertices))
    out.add_edges_from(map(tuple, graph.edges.tolist()))
    return out


class TestAgainstNetworkx:
    @pytest.mark.parametrize(
        "graph",
        [
            grid_graph(4, 5),
            hypercube_graph(4),
            erdos_renyi_graph(24, 0.3, seed=1),
            random_regular_graph(20, 4, seed=2),
            dumbbell_graph(16).graph,
        ],
        ids=["grid", "hypercube", "er", "regular", "dumbbell"],
    )
    def test_laplacian_and_connectivity_agree(self, graph):
        nxg = to_networkx(graph)
        ours = laplacian_matrix(graph)
        theirs = nx.laplacian_matrix(nxg, nodelist=sorted(nxg)).toarray()
        assert np.array_equal(ours, theirs)
        ours_gap = algebraic_connectivity(graph)
        theirs_gap = float(
            sorted(np.linalg.eigvalsh(theirs.astype(float)))[1]
        )
        assert ours_gap == pytest.approx(theirs_gap, abs=1e-8)

    @pytest.mark.parametrize(
        "graph",
        [grid_graph(3, 6), hypercube_graph(3), erdos_renyi_graph(18, 0.3, seed=4)],
        ids=["grid", "hypercube", "er"],
    )
    def test_diameter_agrees(self, graph):
        assert diameter(graph) == nx.diameter(to_networkx(graph))

    def test_connectivity_detector_agrees(self):
        for seed in range(6):
            graph = erdos_renyi_graph(
                16, 0.12, seed=seed, require_connected=False
            )
            assert graph.is_connected() == nx.is_connected(to_networkx(graph))

    def test_sweep_cut_conductance_matches_networkx_formula(self):
        pair = dumbbell_graph(20)
        result = fiedler_sweep_cut(pair.graph)
        nxg = to_networkx(pair.graph)
        side = set(result.partition.vertices_1.tolist())
        theirs = nx.conductance(nxg, side)
        assert result.conductance == pytest.approx(theirs)

    def test_random_regular_degree_sequence_via_networkx(self):
        graph = random_regular_graph(30, 6, seed=5)
        nxg = to_networkx(graph)
        degrees = [d for _, d in nxg.degree()]
        assert degrees == [6] * 30

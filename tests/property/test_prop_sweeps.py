"""Property-based tests for sweep grid expansion and seed namespacing.

The sweep scheduler's correctness rests on three structural properties:
the grid expands to exactly the axis product (no dropped or invented
configurations), no two configurations coincide, and the seed namespaces
of different configurations — and of different replicate windows
("rounds") within one configuration — never overlap.  All three are
checked here over randomized grids.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.vanilla import VanillaGossip
from repro.engine.sweeps import (
    PointConfig,
    SweepAxis,
    SweepRunner,
    SweepSpec,
)
from repro.errors import SweepError
from repro.graphs.topologies import complete_graph


def _unused_builder(**params) -> PointConfig:  # pragma: no cover
    raise AssertionError("expand() must not invoke the builder")


# Axis grids: 1-3 axes with distinct names, each 1-4 distinct values.
axes_grids = st.dictionaries(
    keys=st.sampled_from(["n", "width", "algorithm", "family"]),
    values=st.lists(st.integers(0, 50), min_size=1, max_size=4, unique=True),
    min_size=1,
    max_size=3,
)


def _make_spec(grid: "dict[str, list[int]]") -> SweepSpec:
    return SweepSpec(
        name="prop",
        axes=tuple(SweepAxis(name, tuple(vals)) for name, vals in grid.items()),
        builder=_unused_builder,
    )


class TestGridExpansion:
    @given(axes_grids)
    @settings(max_examples=60, deadline=None)
    def test_cardinality_is_axis_product(self, grid):
        spec = _make_spec(grid)
        points = spec.expand()
        expected = 1
        for values in grid.values():
            expected *= len(values)
        assert spec.n_points == expected
        assert len(points) == expected
        # Indices are the contiguous enumeration of the product.
        assert [p.index for p in points] == list(range(expected))

    @given(axes_grids)
    @settings(max_examples=60, deadline=None)
    def test_no_duplicate_configurations(self, grid):
        spec = _make_spec(grid)
        points = spec.expand()
        signatures = {frozenset(p.params.items()) for p in points}
        assert len(signatures) == len(points)
        # Every point resolves every axis to one of its declared values.
        for point in points:
            assert set(point.params) == set(grid)
            for name, values in grid.items():
                assert point.params[name] in values

    @given(axes_grids)
    @settings(max_examples=30, deadline=None)
    def test_expansion_is_deterministic(self, grid):
        spec = _make_spec(grid)
        assert spec.expand() == spec.expand()

    @given(st.lists(st.integers(0, 20), min_size=2, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_duplicate_axis_values_rejected(self, values):
        with pytest.raises(SweepError):
            SweepAxis("n", tuple(values) + (values[0],))

    @given(axes_grids, st.lists(st.integers(100, 200), min_size=1,
                                max_size=4, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_with_axis_replaces_values(self, grid, new_values):
        spec = _make_spec(grid)
        name = next(iter(grid))
        overridden = spec.with_axis(name, new_values)
        axis = {a.name: a for a in overridden.axes}[name]
        assert list(axis.values) == list(new_values)
        assert overridden.n_points == (
            spec.n_points // len(grid[name]) * len(new_values)
        )


def _trivial_builder(**params) -> PointConfig:
    graph = complete_graph(4)
    return PointConfig(
        graph=graph,
        algorithm_factory=VanillaGossip,
        initial_values=[0.0, 1.0, 2.0, 3.0],
        max_events=8,
    )


class TestSeedNamespaces:
    @given(
        st.integers(1, 5),          # configurations
        st.integers(0, 2**31 - 1),  # sweep root seed
        st.lists(st.integers(1, 4), min_size=1, max_size=3),  # round sizes
    )
    @settings(max_examples=40, deadline=None)
    def test_streams_disjoint_across_points_and_rounds(
        self, n_points, seed, round_sizes
    ):
        """Replicate spawn-keys never collide between configurations or
        between successive replicate windows of one configuration."""
        spec = SweepSpec(
            name="prop",
            axes=(SweepAxis("p", tuple(range(n_points))),),
            builder=_trivial_builder,
        )
        runner = SweepRunner(spec, seed=seed)
        seen: "set[tuple]" = set()
        for point in spec.expand():
            state = runner._prepare_state(point)
            start = 0
            for size in round_sizes:
                for spec_ in state.runner.build_specs(size, start=start):
                    key = spec_.seed_sequence.spawn_key
                    assert key not in seen
                    seen.add(key)
                start += size
        expected = n_points * sum(round_sizes)
        assert len(seen) == expected

    @given(st.integers(0, 2**31 - 1), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_round_windows_tile_the_full_sequence(self, seed, k1, k2):
        """build_specs(k, start=s) windows reproduce one big window's
        streams exactly — growing a point in rounds changes nothing."""
        from repro.engine.runner import MonteCarloRunner

        runner = MonteCarloRunner(
            complete_graph(4), VanillaGossip, [0.0, 1.0, 2.0, 3.0], seed=seed
        )
        whole = runner.build_specs(k1 + k2, max_events=8)
        first = runner.build_specs(k1, max_events=8)
        second = runner.build_specs(k2, start=k1, max_events=8)
        tiled = first + second
        assert [s.index for s in tiled] == [s.index for s in whole]
        for a, b in zip(tiled, whole):
            assert a.seed_sequence.entropy == b.seed_sequence.entropy
            assert a.seed_sequence.spawn_key == b.seed_sequence.spawn_key

    @given(st.integers(0, 2**31 - 1), st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=20, deadline=None)
    def test_point_namespaces_disjoint_from_runner_namespaces(
        self, seed, n_points, n_replicates
    ):
        """A sweep on root seed s and a caller's own MonteCarloRunner on
        the same seed must not share any replicate stream."""
        from repro.engine.runner import MonteCarloRunner

        spec = SweepSpec(
            name="prop",
            axes=(SweepAxis("p", tuple(range(n_points))),),
            builder=_trivial_builder,
        )
        runner = SweepRunner(spec, seed=seed)
        sweep_keys = set()
        for point in spec.expand():
            mc = MonteCarloRunner(
                complete_graph(4), VanillaGossip, np.zeros(4),
                seed=runner.point_sequence(point.index),
            )
            for spec_ in mc.build_specs(n_replicates, max_events=8):
                sweep_keys.add(spec_.seed_sequence.spawn_key)
        direct = MonteCarloRunner(
            complete_graph(4), VanillaGossip, np.zeros(4), seed=seed
        )
        direct_keys = {
            s.seed_sequence.spawn_key
            for s in direct.build_specs(n_replicates, max_events=8)
        }
        assert not (sweep_keys & direct_keys)

"""Property-based tests for the analysis layer."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dominance import (
    couple_with_dominating_walk,
    dominance_violations,
    stochastically_dominates,
)
from repro.analysis.potential import decompose
from repro.analysis.random_walk import dominating_walk_paths, time_to_stay_below
from repro.graphs.composites import two_cliques
from repro.util.serialization import to_jsonable


@st.composite
def partitioned_values(draw):
    n1 = draw(st.integers(2, 6))
    n2 = draw(st.integers(n1, 8))
    pair = two_cliques(n1, n2, n_bridges=1)
    n = pair.graph.n_vertices
    values = draw(
        st.lists(
            st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    return pair.partition, np.asarray(values)


class TestPotentialProperties:
    @given(partitioned_values())
    def test_decomposition_identity(self, case):
        partition, values = case
        result = decompose(values, partition)
        assert result.variance == np.var(values)
        scale = max(1.0, result.variance)
        assert abs(result.variance - (result.sigma**2 + result.imbalance)) \
            <= 1e-9 * scale

    @given(partitioned_values())
    def test_paper_mu_envelope(self, case):
        partition, values = case
        result = decompose(values, partition)
        assert result.paper_upper_bound >= result.variance - 1e-9 * max(
            1.0, result.variance
        )

    @given(partitioned_values(), st.floats(-50.0, 50.0, allow_nan=False))
    def test_translation_invariance(self, case, shift):
        partition, values = case
        base = decompose(values, partition)
        shifted = decompose(values + shift, partition)
        scale = max(1.0, abs(base.variance))
        assert abs(base.variance - shifted.variance) <= 1e-6 * scale
        assert abs(base.sigma - shifted.sigma) <= 1e-6 * max(1.0, base.sigma)
        assert abs(base.paper_mu - shifted.paper_mu) <= 1e-6 * max(
            1.0, base.paper_mu
        )


class TestDominanceProperties:
    @given(
        st.lists(st.floats(-5.0, 5.0, allow_nan=False), min_size=5, max_size=50),
        st.floats(0.1, 10.0),
    )
    def test_shifted_samples_dominate(self, samples, shift):
        assert stochastically_dominates(
            [s + shift for s in samples], samples
        )

    @given(st.integers(4, 256), st.integers(1, 40), st.data())
    @settings(max_examples=40)
    def test_coupling_dominates_whenever_premises_hold(self, n, k, data):
        log_n = math.log(n)
        # Draw increments satisfying the paper's premises: all <= log n,
        # and (by construction) at least half in the deep-down region.
        n_low = k // 2 + k % 2
        low = data.draw(
            st.lists(
                st.floats(-20.0 * log_n, -1.5 * log_n, allow_nan=False),
                min_size=n_low, max_size=n_low,
            )
        )
        high = data.draw(
            st.lists(
                st.floats(-1.5 * log_n, 1.0 * log_n, allow_nan=False),
                min_size=k - n_low, max_size=k - n_low,
            )
        )
        increments = low + high
        walk, dominating = couple_with_dominating_walk(increments, n)
        assert dominance_violations(walk, dominating) == 0

    @given(st.integers(2, 1024), st.integers(0, 2**31 - 1))
    @settings(max_examples=30)
    def test_dominating_walk_settles(self, n, seed):
        paths = dominating_walk_paths(300, max(n, 2), n_paths=20, seed=seed)
        times = time_to_stay_below(paths, -2.0)
        assert np.all(times >= 0)
        assert np.all(times <= 300)


class TestSerializationProperties:
    @given(
        st.recursive(
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(-(2**40), 2**40),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=20),
            ),
            lambda children: st.one_of(
                st.lists(children, max_size=4),
                st.dictionaries(st.text(max_size=8), children, max_size=4),
            ),
            max_leaves=20,
        )
    )
    def test_jsonable_roundtrips_through_json(self, value):
        import json

        payload = to_jsonable(value)
        assert json.loads(json.dumps(payload)) == payload

"""Property-based tests of algorithm invariants.

The load-bearing ones for the paper:

* every class-C update conserves the sum and never increases variance
  (the premises of Theorem 1);
* Algorithm A conserves the sum even though its updates are non-convex
  (the premise of its correctness);
* the exact-gain swap annihilates the cross-cut imbalance on
  side-constant states, for *every* balance (the fix of fidelity note F1).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.convex import ConvexGossip
from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.graphs.composites import two_cliques
from repro.graphs.topologies import complete_graph

values_strategy = st.lists(
    st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False),
    min_size=8,
    max_size=8,
)


def drive(algorithm, graph, values, edge_sequence):
    """Apply the algorithm along a scripted edge sequence, in place."""
    counts = [0] * graph.n_edges
    for i, edge_id in enumerate(edge_sequence):
        counts[edge_id] += 1
        u, v = graph.edge_endpoints(edge_id)
        result = algorithm.on_tick(
            edge_id, u, v, float(i + 1), counts[edge_id], values
        )
        if result is not None:
            values[u], values[v] = result


class TestClassCInvariants:
    @given(
        values_strategy,
        st.floats(0.0, 1.0),
        st.lists(st.integers(0, 27), min_size=1, max_size=60),
    )
    def test_convex_updates_conserve_sum_and_variance_monotone(
        self, initial, alpha, edge_sequence
    ):
        graph = complete_graph(8)
        algorithm = ConvexGossip(alpha)
        algorithm.setup(graph, np.asarray(initial), np.random.default_rng(0))
        values = list(initial)
        previous_variance = float(np.var(values))
        total = sum(values)
        for edge_id in edge_sequence:
            drive(algorithm, graph, values, [edge_id])
            variance = float(np.var(values))
            assert variance <= previous_variance + 1e-9 * max(
                1.0, previous_variance
            )
            previous_variance = variance
        assert abs(sum(values) - total) <= 1e-6 * max(1.0, abs(total))

    @given(values_strategy, st.lists(st.integers(0, 27), min_size=1, max_size=60))
    def test_vanilla_stays_in_convex_hull(self, initial, edge_sequence):
        graph = complete_graph(8)
        algorithm = VanillaGossip()
        algorithm.setup(graph, np.asarray(initial), np.random.default_rng(0))
        values = list(initial)
        lo, hi = min(initial), max(initial)
        drive(algorithm, graph, values, edge_sequence)
        assert min(values) >= lo - 1e-9 * max(1.0, abs(lo))
        assert max(values) <= hi + 1e-9 * max(1.0, abs(hi))


@st.composite
def clique_pairs(draw):
    n1 = draw(st.integers(2, 8))
    n2 = draw(st.integers(n1, 10))
    return two_cliques(n1, n2, n_bridges=1)


class TestAlgorithmAInvariants:
    @given(
        clique_pairs(),
        st.data(),
    )
    @settings(max_examples=40)
    def test_sum_conserved_under_any_tick_sequence(self, pair, data):
        graph = pair.graph
        n = graph.n_vertices
        initial = data.draw(
            st.lists(
                st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False),
                min_size=n,
                max_size=n,
            )
        )
        edge_sequence = data.draw(
            st.lists(st.integers(0, graph.n_edges - 1), min_size=1, max_size=80)
        )
        epoch = data.draw(st.integers(1, 4))
        algorithm = NonConvexSparseCutGossip(
            pair.partition, epoch_length=epoch, gain="exact"
        )
        algorithm.setup(graph, np.asarray(initial), np.random.default_rng(0))
        values = list(initial)
        drive(algorithm, graph, values, edge_sequence)
        assert abs(sum(values) - sum(initial)) <= 1e-6 * max(
            1.0, abs(sum(initial))
        )

    @given(clique_pairs(), st.floats(-10.0, 10.0), st.floats(-10.0, 10.0))
    @settings(max_examples=40)
    def test_exact_swap_equalizes_side_means_on_mixed_states(
        self, pair, mu1, mu2
    ):
        partition = pair.partition
        graph = pair.graph
        algorithm = NonConvexSparseCutGossip(
            partition, epoch_length=1, gain="exact"
        )
        algorithm.setup(
            graph, np.zeros(graph.n_vertices), np.random.default_rng(0)
        )
        values = np.where(partition.side == 0, mu1, mu2).astype(float).tolist()
        edge = algorithm.designated_edge
        u, v = graph.edge_endpoints(edge)
        result = algorithm.on_tick(edge, u, v, 1.0, 1, values)
        assert result is not None
        values[u], values[v] = result
        array = np.asarray(values)
        new_mu1 = array[partition.vertices_1].mean()
        new_mu2 = array[partition.vertices_2].mean()
        assert abs(new_mu1 - new_mu2) <= 1e-9 * max(1.0, abs(mu1), abs(mu2))

    @given(clique_pairs(), st.floats(0.5, 10.0))
    @settings(max_examples=30)
    def test_swap_is_genuinely_nonconvex(self, pair, delta):
        """The designated endpoints leave the hull of their old values."""
        partition = pair.partition
        if partition.n1 < 3:
            return  # gain n1*n2/n can be < 1 for tiny sides
        graph = pair.graph
        algorithm = NonConvexSparseCutGossip(
            partition, epoch_length=1, gain="exact"
        )
        algorithm.setup(
            graph, np.zeros(graph.n_vertices), np.random.default_rng(0)
        )
        values = np.where(partition.side == 0, delta, -delta).astype(float)
        values = values.tolist()
        edge = algorithm.designated_edge
        u, v = graph.edge_endpoints(edge)
        lo, hi = -delta, delta
        result = algorithm.on_tick(edge, u, v, 1.0, 1, values)
        new_u, new_v = result
        assert new_u < lo - 1e-9 or new_u > hi + 1e-9 or (
            new_v < lo - 1e-9 or new_v > hi + 1e-9
        )

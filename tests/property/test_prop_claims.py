"""Property tests: claim verdicts flip exactly at the declared tolerance.

The drift gate's value is its threshold behaviour: a stored statistic
perturbed to anywhere *inside* the claim's tolerance band must keep the
verdict green, and any perturbation that lands *outside* the band must
flip it red — no hysteresis, no hidden slack.  Hypothesis drives the
perturbations; a tiny exclusion zone around each boundary keeps float
rounding out of the contract.
"""

from __future__ import annotations

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.engine.sweeps import PointResult, ReplicateBudget, SweepResult
from repro.reports.claims import (
    BoundClaim,
    DominanceClaim,
    ExponentClaim,
    RatioClaim,
    SpreadClaim,
)

#: Boundary exclusion half-width — perturbations closer to a tolerance
#: edge than this are discarded (float noise territory, not drift).
EDGE = 1e-6


def make_point(index, params, estimate, samples=None):
    if samples is None:
        samples = [estimate] * 3
    return PointResult(
        index=index,
        params=dict(params),
        estimate=estimate,
        ci_low=estimate,
        ci_high=estimate,
        quantile=0.5,
        threshold=1e-3,
        samples=list(samples),
        n_censored=sum(1 for s in samples if math.isinf(s)),
        n_diverged=0,
        budget_exhausted=False,
    )


def make_result(name, axes, rows):
    points = [make_point(i, *row) for i, row in enumerate(rows)]
    return SweepResult(
        sweep_name=name,
        axes={k: list(v) for k, v in axes.items()},
        seed=0,
        budget=ReplicateBudget.fixed(3),
        points=points,
    )


@given(
    ratio=st.floats(min_value=0.05, max_value=50.0),
    base=st.floats(min_value=0.5, max_value=100.0),
)
@settings(max_examples=100, deadline=None)
def test_ratio_claim_flips_exactly_at_the_band_edges(ratio, base):
    claim = RatioClaim(
        claim_id="p-ratio",
        experiment_id="EX",
        sweep="X",
        paper_ref="r",
        statement="s",
        numerator={"algorithm": "num"},
        denominator={"algorithm": "den"},
        low=1.0,
        high=2.6,
    )
    assume(abs(ratio - claim.low) > EDGE * claim.low)
    assume(abs(ratio - claim.high) > EDGE * claim.high)
    result = make_result(
        "X",
        {"algorithm": ["num", "den"]},
        [
            ({"algorithm": "num"}, ratio * base),
            ({"algorithm": "den"}, base),
        ],
    )
    verdict = claim.evaluate({"X": result})
    assert verdict.passed == (claim.low < ratio < claim.high)


@given(
    exponent=st.floats(min_value=0.0, max_value=3.0),
    prefactor=st.floats(min_value=0.01, max_value=10.0),
)
@settings(max_examples=100, deadline=None)
def test_exponent_claim_flips_exactly_at_the_band_edges(exponent, prefactor):
    claim = ExponentClaim(
        claim_id="p-exp",
        experiment_id="EX",
        sweep="X",
        paper_ref="r",
        statement="s",
        axis="n",
        low=0.7,
        high=1.5,
    )
    assume(abs(exponent - claim.low) > EDGE)
    assume(abs(exponent - claim.high) > EDGE)
    sizes = [16, 32, 64, 128]
    result = make_result(
        "X",
        {"n": sizes},
        [({"n": n}, prefactor * n**exponent) for n in sizes],
    )
    verdict = claim.evaluate({"X": result})
    # Exact power-law data: the fit recovers the exponent to float
    # precision, so the verdict is a pure band membership test.
    assert verdict.passed == (claim.low < exponent < claim.high)
    assert abs(verdict.observed - exponent) < 1e-6


@given(
    margin=st.floats(min_value=0.1, max_value=10.0),
    factor=st.sampled_from([1.0, 4.0]),
    side=st.sampled_from(["lower", "upper"]),
)
@settings(max_examples=100, deadline=None)
def test_bound_claim_flips_exactly_at_the_threshold(margin, factor, side):
    assume(abs(margin - 1.0) > EDGE)
    bound_value = 7.0
    claim = BoundClaim(
        claim_id="p-bound",
        experiment_id="EX",
        sweep="X",
        paper_ref="r",
        statement="s",
        bound=lambda params: bound_value,
        side=side,
        factor=factor,
    )
    # estimate = margin * threshold: above the line iff margin > 1.
    result = make_result(
        "X", {"n": [8]}, [({"n": 8}, margin * factor * bound_value)]
    )
    verdict = claim.evaluate({"X": result})
    if side == "lower":
        assert verdict.passed == (margin > 1.0)
    else:
        assert verdict.passed == (margin < 1.0)


@given(spread=st.floats(min_value=1.0, max_value=25.0))
@settings(max_examples=100, deadline=None)
def test_spread_claim_flips_exactly_at_max_ratio(spread):
    claim = SpreadClaim(
        claim_id="p-spread",
        experiment_id="EX",
        sweep="X",
        paper_ref="r",
        statement="s",
        max_ratio=5.0,
    )
    assume(abs(spread - claim.max_ratio) > EDGE)
    result = make_result(
        "X",
        {"w": [0, 1, 2]},
        [({"w": 0}, 2.0), ({"w": 1}, 2.0 * spread), ({"w": 2}, 3.0)],
    )
    verdict = claim.evaluate({"X": result})
    assert verdict.passed == (spread < claim.max_ratio)


@given(
    lift=st.floats(min_value=0.2, max_value=3.0),
    samples=st.lists(
        st.floats(min_value=0.5, max_value=20.0), min_size=2, max_size=6
    ),
)
@settings(max_examples=100, deadline=None)
def test_dominance_claim_flips_exactly_at_the_margin(lift, samples):
    claim = DominanceClaim(
        claim_id="p-dom",
        experiment_id="EX",
        sweep="X",
        paper_ref="r",
        statement="s",
        axis="n",
        upper={"algorithm": "slow"},
        lower={"algorithm": "fast"},
        margin=1.1,
    )
    assume(abs(lift - claim.margin) > EDGE)
    # The fast arm is the slow arm scaled by `lift`: order statistics
    # cross (beyond the margin) exactly when lift > margin.
    slow = sorted(samples)
    fast = [lift * s for s in slow]
    result = make_result(
        "X",
        {"n": [16]},
        [
            ({"n": 16, "algorithm": "slow"}, slow[0], slow),
            ({"n": 16, "algorithm": "fast"}, fast[0], fast),
        ],
    )
    verdict = claim.evaluate({"X": result})
    assert verdict.passed == (lift < claim.margin)

"""Property-based tests for the graph layer."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.builders import graph_from_adjacency_matrix, relabel_graph
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.graphs.properties import connected_components
from repro.graphs.spectral import laplacian_matrix


@st.composite
def random_graphs(draw, min_vertices: int = 2, max_vertices: int = 12):
    """A random simple graph as (n, edge set)."""
    n = draw(st.integers(min_vertices, max_vertices))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
    ) if possible else []
    return Graph(n, edges)


@st.composite
def connected_graphs(draw, min_vertices: int = 2, max_vertices: int = 12):
    """A random connected graph (random spanning tree + extra edges)."""
    n = draw(st.integers(min_vertices, max_vertices))
    # Random spanning tree: attach each vertex to a random earlier one.
    edges = set()
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        edges.add((parent, v))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    extra = draw(st.lists(st.sampled_from(possible), max_size=2 * n))
    edges.update(extra)
    return Graph(n, sorted(edges))


class TestGraphInvariants:
    @given(random_graphs())
    def test_handshake_lemma(self, graph):
        assert int(graph.degrees.sum()) == 2 * graph.n_edges

    @given(random_graphs())
    def test_adjacency_roundtrip(self, graph):
        assert graph_from_adjacency_matrix(graph.adjacency_matrix()) == graph

    @given(random_graphs())
    def test_neighbor_symmetry(self, graph):
        for u in graph:
            for v in graph.neighbors(u):
                assert u in graph.neighbors(int(v))

    @given(random_graphs())
    def test_components_partition_vertices(self, graph):
        components = connected_components(graph)
        combined = sorted(int(v) for c in components for v in c)
        assert combined == list(range(graph.n_vertices))

    @given(random_graphs(min_vertices=3))
    def test_laplacian_psd(self, graph):
        values = np.linalg.eigvalsh(laplacian_matrix(graph))
        assert values.min() > -1e-9

    @given(connected_graphs(), st.randoms(use_true_random=False))
    def test_relabel_preserves_degree_multiset(self, graph, pyrandom):
        mapping = list(range(graph.n_vertices))
        pyrandom.shuffle(mapping)
        relabeled = relabel_graph(graph, mapping)
        assert sorted(relabeled.degrees.tolist()) == sorted(
            graph.degrees.tolist()
        )

    @given(connected_graphs())
    def test_connected_detector_agrees_with_components(self, graph):
        assert graph.is_connected()
        assert len(connected_components(graph)) == 1


class TestPartitionInvariants:
    @given(connected_graphs(min_vertices=2), st.data())
    def test_partition_edge_accounting(self, graph, data):
        side = data.draw(
            st.lists(
                st.integers(0, 1),
                min_size=graph.n_vertices,
                max_size=graph.n_vertices,
            ).filter(lambda s: 0 < sum(s) < len(s))
        )
        partition = Partition(graph, side)
        assert partition.n1 + partition.n2 == graph.n_vertices
        assert partition.n1 <= partition.n2
        total = (
            partition.cut_size
            + len(partition.internal_edge_ids(0))
            + len(partition.internal_edge_ids(1))
        )
        assert total == graph.n_edges

    @given(connected_graphs(min_vertices=2), st.data())
    def test_cut_edges_cross_and_internals_do_not(self, graph, data):
        side = data.draw(
            st.lists(
                st.integers(0, 1),
                min_size=graph.n_vertices,
                max_size=graph.n_vertices,
            ).filter(lambda s: 0 < sum(s) < len(s))
        )
        partition = Partition(graph, side)
        for edge_id in partition.cut_edge_ids:
            u, v = graph.edge_endpoints(int(edge_id))
            assert partition.side_of(u) != partition.side_of(v)
        for side_index in (0, 1):
            for edge_id in partition.internal_edge_ids(side_index):
                u, v = graph.edge_endpoints(int(edge_id))
                assert partition.side_of(u) == partition.side_of(v) == side_index

    @given(connected_graphs(min_vertices=3), st.data())
    def test_subgraph_maps_are_inverse(self, graph, data):
        side = data.draw(
            st.lists(
                st.integers(0, 1),
                min_size=graph.n_vertices,
                max_size=graph.n_vertices,
            ).filter(lambda s: 0 < sum(s) < len(s))
        )
        partition = Partition(graph, side)
        g1, map1, g2, map2 = partition.subgraphs()
        assert sorted(map1.tolist()) == partition.vertices_1.tolist()
        assert sorted(map2.tolist()) == partition.vertices_2.tolist()
        # Every internal edge appears in the corresponding subgraph.
        assert g1.n_edges == len(partition.internal_edge_ids(0))
        assert g2.n_edges == len(partition.internal_edge_ids(1))

"""Property-based equivalence of the scalar and vectorized kernels.

Randomized workloads, seeds, convexity parameters, thresholds and stop
budgets — under all of them the vectorized replicate-batch kernel must
reproduce the scalar event loop's results **bit-identically**, because
kernel choice is a scheduling decision with no modeling content.  These
properties complement the example-based suite in
``tests/unit/test_kernels.py`` by searching the configuration space
instead of enumerating it.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.backends import AlgorithmFactory
from repro.engine.results import results_identical
from repro.engine.runner import MonteCarloRunner
from repro.graphs.topologies import complete_graph, cycle_graph


class FixedWorkload:
    """Deterministic length-8 workload from a hypothesis-drawn list."""

    def __init__(self, values) -> None:
        self.values = [float(v) for v in values]

    def __call__(self, rng: np.random.Generator):
        return list(self.values)


values_8 = st.lists(
    st.floats(-1000.0, 1000.0, allow_nan=False, allow_infinity=False),
    min_size=8,
    max_size=8,
)


def kernels_agree(
    graph, factory, workload, seed, n_replicates, clock=None, **run_kwargs
):
    scalar = MonteCarloRunner(
        graph, factory, workload, seed=seed, clock_factory=clock, kernel="scalar"
    ).run(n_replicates, **run_kwargs)
    vector = MonteCarloRunner(
        graph, factory, workload, seed=seed, clock_factory=clock, kernel="vectorized"
    ).run(n_replicates, **run_kwargs)
    assert len(scalar) == len(vector)
    for a, b in zip(scalar, vector):
        assert results_identical(a, b)


class TestKernelEquivalence:
    @given(values_8, st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_vanilla_event_budget(self, initial, seed):
        from repro.algorithms.vanilla import VanillaGossip

        kernels_agree(
            complete_graph(8),
            VanillaGossip,
            FixedWorkload(initial),
            seed,
            5,
            max_events=400,
        )

    @given(
        values_8,
        st.integers(0, 2**31 - 1),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_convex_alpha_sweep(self, initial, seed, alpha):
        from repro.algorithms.convex import ConvexGossip

        kernels_agree(
            cycle_graph(8),
            AlgorithmFactory(ConvexGossip, alpha=alpha),
            FixedWorkload(initial),
            seed,
            5,
            max_events=300,
            thresholds=(0.5, 0.05),
        )

    @given(
        st.integers(0, 2**31 - 1),
        st.floats(0.0, 0.5),
        st.floats(0.5, 1.0),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_convex_weights(self, seed, low, high):
        from repro.algorithms.convex import RandomConvexGossip

        graph = complete_graph(8)

        def workload(rng):
            return rng.normal(size=8)

        kernels_agree(
            graph,
            AlgorithmFactory(RandomConvexGossip, low=low, high=high),
            workload,
            seed,
            5,
            max_events=300,
        )

    @given(values_8, st.integers(0, 2**31 - 1), st.floats(1e-4, 0.9))
    @settings(max_examples=15, deadline=None)
    def test_target_ratio_stop(self, initial, seed, target):
        from repro.algorithms.vanilla import VanillaGossip

        kernels_agree(
            complete_graph(8),
            VanillaGossip,
            FixedWorkload(initial),
            seed,
            5,
            target_ratio=target,
            max_events=5_000,
        )


class TestGeneralizedLoopEquivalence:
    """The epoch-aware / wrapped-clock lockstep loop, searched randomly:
    Algorithm A's swap schedule and the lossy/failing tick masks must
    stay bit-identical to the scalar oracle at every drawn configuration.
    """

    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 6),
        st.one_of(
            st.just("exact"),
            st.just("paper"),
            st.floats(0.5, 8.0, allow_nan=False),
        ),
        st.booleans(),
    )
    @settings(max_examples=10, deadline=None)
    def test_nonconvex_swap_schedule(self, seed, epoch_length, gain, oracle):
        from repro.algorithms.nonconvex import NonConvexSparseCutGossip
        from repro.graphs.composites import dumbbell_graph

        pair = dumbbell_graph(6)
        n = pair.graph.n_vertices

        def workload(rng):
            return rng.normal(size=n)

        kernels_agree(
            pair.graph,
            AlgorithmFactory(
                NonConvexSparseCutGossip,
                pair.partition,
                epoch_length=epoch_length,
                gain=gain,
                oracle_means=oracle,
            ),
            workload,
            seed,
            5,
            max_events=2_000,
            target_ratio=1e-4,
            thresholds=(0.5, np.e**-2),
        )

    @given(st.integers(0, 2**31 - 1), st.floats(0.0, 0.9))
    @settings(max_examples=10, deadline=None)
    def test_lossy_clock_mask(self, seed, drop):
        from repro.algorithms.vanilla import VanillaGossip
        from repro.clocks.unreliable import LossyPoissonClockFactory

        graph = complete_graph(8)

        def workload(rng):
            return rng.normal(size=8)

        kernels_agree(
            graph,
            VanillaGossip,
            workload,
            seed,
            5,
            clock=LossyPoissonClockFactory(graph.n_edges, drop),
            max_events=1_500,
            target_ratio=1e-4,
        )

    @given(st.integers(0, 2**31 - 1), st.floats(0.2, 5.0))
    @settings(max_examples=10, deadline=None)
    def test_failing_clock_mask(self, seed, rate):
        from repro.algorithms.nonconvex import NonConvexSparseCutGossip
        from repro.clocks.unreliable import FailingPoissonClockFactory
        from repro.graphs.composites import dumbbell_graph

        pair = dumbbell_graph(6)
        n = pair.graph.n_vertices

        def workload(rng):
            return rng.normal(size=n)

        kernels_agree(
            pair.graph,
            AlgorithmFactory(
                NonConvexSparseCutGossip, pair.partition, epoch_length=2
            ),
            workload,
            seed,
            5,
            clock=FailingPoissonClockFactory(pair.graph.n_edges, rate),
            max_events=8_000,
            target_ratio=1e-5,
        )

"""Property-based tests of the engine's bookkeeping and the clocks."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.convex import ConvexGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.poisson import PoissonEdgeClocks
from repro.clocks.schedule import ScriptedSchedule
from repro.engine.simulator import simulate
from repro.graphs.topologies import complete_graph, cycle_graph

values_8 = st.lists(
    st.floats(-1000.0, 1000.0, allow_nan=False, allow_infinity=False),
    min_size=8,
    max_size=8,
)


class TestEngineBookkeeping:
    @given(values_8, st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_final_variance_matches_numpy(self, initial, seed):
        graph = complete_graph(8)
        result = simulate(graph, VanillaGossip(), initial, seed=seed,
                          max_events=300)
        assert result.variance_final == float(np.var(result.values))

    @given(values_8, st.integers(0, 2**31 - 1), st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_sum_conserved_for_class_c(self, initial, seed, alpha):
        graph = complete_graph(8)
        result = simulate(graph, ConvexGossip(alpha), initial, seed=seed,
                          max_events=400)
        scale = max(1.0, float(np.max(np.abs(initial))))
        assert result.sum_drift <= 1e-7 * scale * 8

    @given(values_8, st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_crossing_times_bounded_by_duration(self, initial, seed):
        graph = cycle_graph(8)
        result = simulate(
            graph, VanillaGossip(), initial, seed=seed, max_events=200,
            thresholds=(0.5, 0.05),
        )
        for crossing in result.crossings.values():
            assert crossing.last_above <= result.duration + 1e-12
            if crossing.first_below is not None:
                assert crossing.first_below <= result.duration + 1e-12

    @given(
        st.lists(st.integers(0, 7), min_size=1, max_size=40),
        values_8,
    )
    @settings(max_examples=30, deadline=None)
    def test_scripted_runs_are_deterministic(self, edge_ids, initial):
        from hypothesis import assume

        # Zero-variance starts legitimately short-circuit to 0 events.
        assume(float(np.var(initial)) > 0.0)
        graph = cycle_graph(8)
        def run_once():
            schedule = ScriptedSchedule.uniform_times(
                edge_ids, n_edges=graph.n_edges
            )
            return simulate(graph, VanillaGossip(), initial,
                            clock=schedule, max_events=1000)
        a, b = run_once(), run_once()
        assert np.array_equal(a.values, b.values)
        assert a.n_events == b.n_events == len(edge_ids)


class TestClockProperties:
    @given(st.integers(1, 50), st.integers(0, 2**31 - 1), st.integers(1, 500))
    @settings(max_examples=30, deadline=None)
    def test_batches_preserve_order_and_range(self, m, seed, batch):
        clocks = PoissonEdgeClocks(m, seed=seed)
        times, edges = clocks.next_batch(batch)
        assert len(times) == len(edges) == batch
        assert np.all(np.diff(times) > 0)
        assert edges.min() >= 0 and edges.max() < m

    @given(st.integers(2, 20), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_exponential_gaps_have_unit_mean_rate_m(self, m, seed):
        clocks = PoissonEdgeClocks(m, seed=seed)
        times, _ = clocks.next_batch(4000)
        gaps = np.diff(np.concatenate([[0.0], times]))
        # Mean gap = 1/m within generous Monte-Carlo tolerance.
        assert abs(float(np.mean(gaps)) * m - 1.0) <= 0.15

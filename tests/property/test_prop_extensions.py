"""Property-based tests for the extension subsystems."""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.poisson import PoissonEdgeClocks
from repro.clocks.unreliable import FailingEdgeClocks, LossyClocks
from repro.core.multi_cut import MultiCutGossip
from repro.engine.simulator import simulate
from repro.graphs.clustering import chain_of_cliques
from repro.graphs.geometric import GeometricNetwork
from repro.graphs.graph import Graph
from repro.graphs.topologies import complete_graph


class TestGeneralUpdatePath:
    """The engine's list-of-(vertex, value) update path must keep exact stats."""

    @given(
        st.lists(
            st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False),
            min_size=6, max_size=6,
        ),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_remote_pair_averaging_matches_numpy(self, initial, seed):
        assume(float(np.var(initial)) > 1e-9)

        class RemotePairAverager(VanillaGossip):
            """Averages a pseudo-random non-adjacent pair on every tick."""

            name = "remote-pair"
            monotone_variance = True

            def on_tick(self, edge_id, u, v, time, tick_count, values):
                a = (u + 2) % 6
                b = (v + 3) % 6
                if a == b:
                    return None
                mean = 0.5 * (values[a] + values[b])
                return [(a, mean), (b, mean)]

        graph = complete_graph(6)
        result = simulate(graph, RemotePairAverager(), initial, seed=seed,
                          max_events=500)
        assert result.variance_final == float(np.var(result.values))
        assert abs(result.sum_final - float(np.sum(initial))) <= 1e-7 * max(
            1.0, abs(float(np.sum(initial)))
        )


@st.composite
def clique_chains(draw):
    clique_size = draw(st.integers(3, 6))
    n_cliques = draw(st.integers(2, 4))
    return chain_of_cliques(clique_size, n_cliques)


class TestMultiCutProperties:
    @given(clique_chains(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_sum_conserved_under_any_tick_sequence(self, chain, data):
        graph, clusters = chain
        n = graph.n_vertices
        initial = data.draw(
            st.lists(
                st.floats(-20.0, 20.0, allow_nan=False, allow_infinity=False),
                min_size=n, max_size=n,
            )
        )
        edge_sequence = data.draw(
            st.lists(st.integers(0, graph.n_edges - 1), min_size=1,
                     max_size=60)
        )
        algo = MultiCutGossip(clusters, epoch_lengths=data.draw(
            st.integers(1, 3)
        ))
        algo.setup(graph, np.asarray(initial), np.random.default_rng(0))
        values = list(initial)
        counts = [0] * graph.n_edges
        for i, edge_id in enumerate(edge_sequence):
            counts[edge_id] += 1
            u, v = graph.edge_endpoints(edge_id)
            result = algo.on_tick(edge_id, u, v, float(i + 1),
                                  counts[edge_id], values)
            if result is not None:
                values[u], values[v] = result
        assert abs(sum(values) - sum(initial)) <= 1e-7 * max(
            1.0, abs(sum(initial))
        )

    @given(clique_chains(), st.floats(-5.0, 5.0), st.floats(-5.0, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_swap_equalizes_the_pair_for_any_values(self, chain, mu_a, mu_b):
        graph, clusters = chain
        algo = MultiCutGossip(clusters, epoch_lengths=1)
        algo.setup(graph, np.zeros(graph.n_vertices), np.random.default_rng(0))
        edge = algo.designated_edges[0]
        u, v = graph.edge_endpoints(edge)
        cluster_u = int(clusters.labels[u])
        cluster_v = int(clusters.labels[v])
        values = np.where(
            clusters.labels == cluster_u, mu_a,
            np.where(clusters.labels == cluster_v, mu_b, 0.0),
        ).astype(float).tolist()
        result = algo.on_tick(edge, u, v, 1.0, 1, values)
        values[u], values[v] = result
        array = np.asarray(values)
        new_a = array[clusters.members(cluster_u)].mean()
        new_b = array[clusters.members(cluster_v)].mean()
        assert abs(new_a - new_b) <= 1e-9 * max(1.0, abs(mu_a), abs(mu_b))


class TestUnreliableClockProperties:
    @given(
        st.integers(2, 20),
        st.floats(0.0, 0.9),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_lossy_preserves_order_and_subset(self, m, p, seed):
        inner = PoissonEdgeClocks(m, seed=seed)
        reference = PoissonEdgeClocks(m, seed=seed)
        ref_times, _ = reference.next_batch(500)
        lossy = LossyClocks(inner, p, seed=seed + 1)
        times, edges = lossy.next_batch(500)
        assert len(times) == len(edges) <= 500
        if len(times) > 1:
            assert np.all(np.diff(times) > 0)
        assert set(times.tolist()) <= set(ref_times.tolist())

    @given(st.integers(2, 20), st.integers(0, 2**31 - 1), st.data())
    @settings(max_examples=25, deadline=None)
    def test_failing_edges_never_tick_after_death(self, m, seed, data):
        deaths = {
            e: data.draw(st.floats(0.0, 5.0))
            for e in data.draw(
                st.lists(st.integers(0, m - 1), unique=True, max_size=m)
            )
        }
        failing = FailingEdgeClocks(PoissonEdgeClocks(m, seed=seed), deaths)
        times, edges = failing.next_batch(2000)
        for t, e in zip(times.tolist(), edges.tolist()):
            assert t < deaths.get(int(e), float("inf"))


class TestGeometricProperties:
    @given(st.integers(2, 30), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_greedy_route_distance_strictly_decreases(self, n, seed):
        rng = np.random.default_rng(seed)
        positions = rng.random((n, 2))
        # Complete geometric graph: routing always reaches the target.
        edges = [(u, v) for u in range(n) for v in range(u + 1, n)]
        network = GeometricNetwork(graph=Graph(n, edges), positions=positions)
        source, target = int(rng.integers(n)), int(rng.integers(n))
        route = network.greedy_route(source, target)
        assert route is not None
        assert route[0] == source and route[-1] == target
        distances = [network.distance(v, target) for v in route]
        assert all(b < a for a, b in zip(distances, distances[1:]))

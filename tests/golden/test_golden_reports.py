"""Golden-report regression tests.

Every rendering here regenerates from a *seeded results store* — the
sweeps are computed once into a temporary store, then each report is
rebuilt with computation disabled, so the bytes prove the whole
data-driven path (store rows -> ReportSpec builders -> render) is
deterministic and unchanged.  The committed goldens double as readable
examples of each report's exact output at smoke scale.

Regenerate after an intentional rendering change with::

    PYTHONPATH=src python tests/golden/test_golden_reports.py --regen

and review the diff like any other source change.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.engine.store import ResultsStore
from repro.reports import (
    CLAIM_SEEDS,
    SweepSource,
    evaluate_claims,
    get_claims,
    required_sweeps,
    verdict_table,
)

GOLDEN_DIR = Path(__file__).resolve().parent

#: The goldened experiments: a Theorem-1 sweep report (E1), the
#: headline dumbbell report (E3) and the failure-injection report
#: (E13) — two sweep shapes plus the claims verdict table below.
EXPERIMENT_IDS = ("E1", "E3", "E13")

#: Claims evaluable from the goldened sweeps alone.
CLAIM_IDS = (
    "E1-thm1-bound",
    "E3-vanilla-linear",
    "E3-speedup",
    "E6-dominance",
    "E13-lossy-slowdown",
    "E13-failover",
)


def _seed_store(directory) -> ResultsStore:
    """Compute the goldened sweeps once, through the store."""
    store = ResultsStore(Path(directory) / "golden.sqlite")
    source = SweepSource(store=store)
    for sweep_id, seed in sorted(
        required_sweeps(get_claims(CLAIM_IDS)).items()
    ):
        source.resolve(sweep_id, scale="smoke", seed=seed)
    return store


def _render_report(store: ResultsStore, experiment_id: str) -> str:
    from repro.experiments.specs import run_experiment

    report = run_experiment(
        experiment_id,
        scale="smoke",
        source=SweepSource(store=store, compute=False),
    )
    return report.render() + "\n"


def _render_claims(store: ResultsStore) -> str:
    claims = get_claims(CLAIM_IDS)
    source = SweepSource(store=store, compute=False)
    results = {
        sweep_id: source.resolve(sweep_id, scale="smoke", seed=seed)
        for sweep_id, seed in required_sweeps(claims).items()
    }
    return verdict_table(claims, evaluate_claims(claims, results)).render() + "\n"


@pytest.fixture(scope="module")
def seeded_store(tmp_path_factory):
    return _seed_store(tmp_path_factory.mktemp("golden-store"))


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_report_regenerates_byte_identical(seeded_store, experiment_id):
    golden = GOLDEN_DIR / f"{experiment_id.lower()}_smoke.txt"
    rendered = _render_report(seeded_store, experiment_id)
    assert rendered == golden.read_text(encoding="utf-8"), (
        f"{experiment_id} drifted from {golden}; if the change is "
        "intentional, regenerate with "
        "`PYTHONPATH=src python tests/golden/test_golden_reports.py --regen` "
        "and commit the diff"
    )


def test_claims_verdicts_regenerate_byte_identical(seeded_store):
    golden = GOLDEN_DIR / "claims_smoke.txt"
    assert _render_claims(seeded_store) == golden.read_text(encoding="utf-8")


def test_rebuild_from_the_same_store_is_deterministic(seeded_store):
    assert _render_report(seeded_store, "E3") == _render_report(
        seeded_store, "E3"
    )


def _regenerate() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as scratch:
        store = _seed_store(scratch)
        for experiment_id in EXPERIMENT_IDS:
            path = GOLDEN_DIR / f"{experiment_id.lower()}_smoke.txt"
            path.write_text(
                _render_report(store, experiment_id), encoding="utf-8"
            )
            print(f"wrote {path}")
        path = GOLDEN_DIR / "claims_smoke.txt"
        path.write_text(_render_claims(store), encoding="utf-8")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        sys.exit("usage: python tests/golden/test_golden_reports.py --regen")
    _regenerate()

"""Unit tests for the Partition class."""

from __future__ import annotations

import pytest

from repro.errors import PartitionError
from repro.graphs.partition import Partition
from repro.graphs.topologies import complete_graph, path_graph


class TestConstruction:
    def test_sides_normalized_smaller_first(self):
        partition = Partition(complete_graph(6), [1, 1, 1, 1, 0, 0])
        assert partition.n1 == 2
        assert partition.n2 == 4
        assert partition.n1 <= partition.n2

    def test_side_labels_validated(self):
        with pytest.raises(PartitionError, match="0 or 1"):
            Partition(complete_graph(3), [0, 1, 2])

    def test_both_sides_required(self):
        with pytest.raises(PartitionError, match="non-empty"):
            Partition(complete_graph(3), [0, 0, 0])

    def test_length_validated(self):
        with pytest.raises(PartitionError, match="length"):
            Partition(complete_graph(3), [0, 1])

    def test_from_vertex_set(self):
        partition = Partition.from_vertex_set(complete_graph(5), [0, 1])
        assert partition.n1 == 2
        assert set(partition.vertices_1.tolist()) == {0, 1}

    def test_from_vertex_set_rejects_improper(self):
        with pytest.raises(PartitionError):
            Partition.from_vertex_set(complete_graph(3), [])
        with pytest.raises(PartitionError):
            Partition.from_vertex_set(complete_graph(3), [0, 1, 2])


class TestCutStructure:
    def test_cut_edges_of_path_split(self):
        partition = Partition(path_graph(4), [0, 0, 1, 1])
        assert partition.cut_size == 1
        edge = partition.graph.edge_endpoints(int(partition.cut_edge_ids[0]))
        assert edge == (1, 2)

    def test_internal_edges_partitioned(self, small_dumbbell):
        partition = small_dumbbell.partition
        total = (
            len(partition.internal_edge_ids(0))
            + len(partition.internal_edge_ids(1))
            + partition.cut_size
        )
        assert total == partition.graph.n_edges

    def test_internal_edges_bad_side(self, small_dumbbell):
        with pytest.raises(PartitionError):
            small_dumbbell.partition.internal_edge_ids(2)

    def test_side_of(self, small_dumbbell):
        partition = small_dumbbell.partition
        for v in partition.vertices_1:
            assert partition.side_of(int(v)) == 0
        with pytest.raises(PartitionError):
            partition.side_of(999)

    def test_cut_edge_endpoints_oriented(self, small_dumbbell):
        partition = small_dumbbell.partition
        pairs = partition.cut_edge_endpoints()
        for v1_end, v2_end in pairs:
            assert partition.side_of(int(v1_end)) == 0
            assert partition.side_of(int(v2_end)) == 1


class TestMeasures:
    def test_sparsity_of_dumbbell(self, small_dumbbell):
        partition = small_dumbbell.partition
        assert partition.sparsity == pytest.approx(1 / 8)

    def test_conductance_uses_volume(self):
        partition = Partition(complete_graph(6), [0, 0, 0, 1, 1, 1])
        # cut = 9, volume each side = 15.
        assert partition.conductance == pytest.approx(9 / 15)

    def test_balance(self, unbalanced_partition):
        assert unbalanced_partition.balance == pytest.approx(2 / 6)


class TestSubgraphs:
    def test_subgraphs_structure(self, small_dumbbell):
        g1, map1, g2, map2 = small_dumbbell.partition.subgraphs()
        assert g1.n_vertices == 8 and g2.n_vertices == 8
        assert g1.n_edges == 28 and g2.n_edges == 28
        assert len(map1) == 8 and len(map2) == 8

    def test_sides_connected_detection(self):
        # Path 0-1-2-3 split as {0, 2} vs {1, 3}: both sides disconnected...
        # actually singletons within the induced graph, so side {0,2} has
        # no internal edge and is disconnected.
        partition = Partition(path_graph(4), [0, 1, 0, 1])
        ok1, ok2 = partition.sides_connected()
        assert not ok1 and not ok2
        with pytest.raises(PartitionError, match="not internally connected"):
            partition.require_connected_sides()

    def test_require_connected_sides_passes(self, small_dumbbell):
        small_dumbbell.partition.require_connected_sides()

    def test_repr(self, small_dumbbell):
        assert "cut_size=1" in repr(small_dumbbell.partition)

"""Unit tests for the sharded sweep scheduler.

Mirrors ``test_backends.py``'s determinism suite one level up: a sweep's
reported result must be **bit-identical** across backends, worker counts
and adaptive round sizes, because every sample is keyed by its
(configuration, replicate) seed namespace and the stopping rule is a
prefix scan over the sample sequence.  Factories and builders live at
module level so they survive pickling to worker processes.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.algorithms.vanilla import VanillaGossip
from repro.engine.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    shutdown_shared_backends,
)
from repro.engine.results import results_identical
from repro.engine.sweeps import (
    PointConfig,
    PointResult,
    ReplicateBudget,
    StopDecision,
    SweepAxis,
    SweepResult,
    SweepRunner,
    SweepSpec,
    bootstrap_quantile_ci,
    evaluate_stopping,
    quantile_estimate,
    run_sweep,
)
from repro.errors import SweepError
from repro.graphs.topologies import complete_graph


@pytest.fixture(autouse=True)
def _release_shared_pools():
    yield
    shutdown_shared_backends()


def build_complete_point(*, n: int, algorithm: str) -> PointConfig:
    """Tiny, fast measurement: vanilla gossip on K_n."""
    return PointConfig(
        graph=complete_graph(int(n)),
        algorithm_factory=VanillaGossip,
        initial_values=[float(i) for i in range(int(n))],
        max_time=50.0,
        max_events=100_000,
    )


class NaNGossip(VanillaGossip):
    """Poisons the value vector: every tick returns NaN endpoints."""

    name = "nan-gossip"

    def on_tick(self, edge_id, u, v, time, tick_count, values):
        return (float("nan"), float("nan"))


def build_nan_point(*, n: int) -> PointConfig:
    return PointConfig(
        graph=complete_graph(int(n)),
        algorithm_factory=NaNGossip,
        initial_values=[float(i) for i in range(int(n))],
        max_events=16,
    )


def build_censored_point(*, n: int) -> PointConfig:
    """A budget far too small: every replicate censors (inf sample)."""
    return PointConfig(
        graph=complete_graph(int(n)),
        algorithm_factory=VanillaGossip,
        initial_values=[float(i) for i in range(int(n))],
        max_time=1e-6,
    )


def build_padded_point(*, n: int, pad: int) -> PointConfig:
    """Builder whose base param changes nothing observable — exactly the
    case the checkpoint fingerprint must still distinguish."""
    return build_complete_point(n=n, algorithm="vanilla")


def build_mixed_pickle_point(*, n: int) -> PointConfig:
    """One good configuration, one carrying an unpicklable closure."""
    config = build_complete_point(n=n, algorithm="vanilla")
    if n == 6:
        config.algorithm_factory = lambda: VanillaGossip()
    return config


def small_spec() -> SweepSpec:
    return SweepSpec(
        name="unit",
        axes=(
            SweepAxis("n", (5, 6, 7)),
            SweepAxis("algorithm", ("vanilla",)),
        ),
        builder=build_complete_point,
    )


ADAPTIVE = ReplicateBudget.adaptive(
    target_ci=0.6, min_replicates=3, max_replicates=12, round_size=2
)


def sweep_json(result: SweepResult) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class CountingBackend(ExecutionBackend):
    """Serial execution that records how many specs it ever ran."""

    name = "counting"

    def __init__(self) -> None:
        self.n_executed = 0

    def execute(self, specs):
        self.n_executed += len(specs)
        return SerialBackend().execute(specs)


class TestSweepDeterminism:
    def test_round_sizes_do_not_change_the_result(self):
        """The headline scheduling-independence guarantee: the settled
        prefix is a function of the sample sequence only."""
        spec = small_spec()
        results = {}
        for round_size in (1, 3, 7):
            budget = ReplicateBudget.adaptive(
                target_ci=0.6, min_replicates=3, max_replicates=12,
                round_size=round_size,
            )
            runner = SweepRunner(
                spec, seed=5, budget=budget, keep_run_results=True
            )
            results[round_size] = (runner.run(), runner.run_results)
        reference, reference_runs = results[1]
        for round_size in (3, 7):
            other, other_runs = results[round_size]
            assert sweep_json(other) == sweep_json(reference)
            assert set(other_runs) == set(reference_runs)
            for index in reference_runs:
                assert len(other_runs[index]) == len(reference_runs[index])
                for a, b in zip(other_runs[index], reference_runs[index]):
                    assert results_identical(a, b)

    def test_backends_agree_field_by_field(self, backend):
        """Serial vs process vs cluster, one matrix: bit-identical
        SweepResult and field-by-field identical raw RunResults."""
        spec = small_spec()
        reference_runner = SweepRunner(
            spec, seed=5, budget=ADAPTIVE, backend=SerialBackend(),
            keep_run_results=True,
        )
        reference = reference_runner.run()
        runner = SweepRunner(
            spec, seed=5, budget=ADAPTIVE, backend=backend,
            keep_run_results=True,
        )
        other = runner.run()
        assert sweep_json(other) == sweep_json(reference)
        for index in reference_runner.run_results:
            for a, b in zip(
                runner.run_results[index], reference_runner.run_results[index]
            ):
                assert results_identical(a, b)

    @pytest.mark.slow
    def test_worker_counts_agree_byte_for_byte(self):
        """2 vs 4 pool workers: scheduling width never leaks into results."""
        spec = small_spec()
        outcomes = {}
        for n_workers in (2, 4):
            backend = ProcessPoolBackend(n_workers)
            outcomes[n_workers] = SweepRunner(
                spec, seed=5, budget=ADAPTIVE, backend=backend
            ).run()
            backend.shutdown()
        assert sweep_json(outcomes[2]) == sweep_json(outcomes[4])

    def test_run_sweep_convenience_matches_runner(self):
        spec = small_spec()
        direct = SweepRunner(spec, seed=9, budget=ADAPTIVE).run()
        wrapped = run_sweep(spec, seed=9, budget=ADAPTIVE)
        assert sweep_json(direct) == sweep_json(wrapped)

    def test_json_round_trip_is_lossless(self, tmp_path):
        result = SweepRunner(small_spec(), seed=5, budget=ADAPTIVE).run()
        path = result.save(tmp_path / "sweep.json")
        clone = SweepResult.load(path)
        assert sweep_json(clone) == sweep_json(result)
        # Saving the clone reproduces the identical artifact.
        clone_path = clone.save(tmp_path / "clone.json")
        assert clone_path.read_text() == path.read_text()


class TestAdaptiveStopping:
    def test_minimum_replicate_floor_respected(self):
        """Even a zero-noise configuration never settles below the floor."""
        budget = ReplicateBudget.adaptive(
            target_ci=100.0, min_replicates=5, max_replicates=20,
            round_size=3,
        )
        result = SweepRunner(small_spec(), seed=2, budget=budget).run()
        for point in result.points:
            assert point.n_replicates == 5  # floor, and never less
            assert not point.budget_exhausted

    def test_adaptive_beats_fixed_within_tolerance(self):
        """The budget's reason to exist: fewer replicates than the fixed
        cap on at least one point, CI still inside the target."""
        spec = small_spec()
        adaptive = ReplicateBudget.adaptive(
            target_ci=0.8, min_replicates=3, max_replicates=16, round_size=2
        )
        adaptive_result = SweepRunner(spec, seed=5, budget=adaptive).run()
        fixed_result = SweepRunner(
            spec, seed=5, budget=ReplicateBudget.fixed(16)
        ).run()
        assert fixed_result.total_replicates == 16 * spec.n_points
        assert adaptive_result.total_replicates < fixed_result.total_replicates
        saved = [
            p for p in adaptive_result.points
            if p.n_replicates < 16 and not p.budget_exhausted
        ]
        assert saved, "no grid point settled below the fixed budget"
        for point in saved:
            assert point.ci_relative_width <= 0.8

    def test_cap_reached_flags_budget_exhausted(self):
        budget = ReplicateBudget.adaptive(
            target_ci=1e-6, min_replicates=3, max_replicates=6, round_size=2
        )
        result = SweepRunner(small_spec(), seed=2, budget=budget).run()
        for point in result.points:
            assert point.n_replicates == 6
            assert point.budget_exhausted

    def test_fixed_budget_never_flags_exhaustion(self):
        result = SweepRunner(
            small_spec(), seed=2, budget=ReplicateBudget.fixed(4)
        ).run()
        for point in result.points:
            assert point.n_replicates == 4
            assert not point.budget_exhausted
            # Fixed budgets still report a CI for the aggregation tables.
            assert point.ci_low <= point.estimate <= point.ci_high

    def test_nan_replicates_excluded_without_stalling(self):
        """A diverging configuration terminates at the cap with its NaN
        samples counted but excluded from the quantile."""
        spec = SweepSpec(
            name="nan",
            axes=(SweepAxis("n", (5,)),),
            builder=build_nan_point,
        )
        budget = ReplicateBudget.adaptive(
            target_ci=0.5, min_replicates=3, max_replicates=7, round_size=2
        )
        result = SweepRunner(spec, seed=0, budget=budget).run()
        (point,) = result.points
        assert point.n_replicates == 7  # ran to the cap, did not stall
        assert point.budget_exhausted
        assert point.n_diverged == 7
        assert math.isnan(point.estimate)
        # The artifact still round-trips (NaN encoded portably).
        clone = SweepResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert math.isnan(clone.points[0].estimate)

    def test_censored_replicates_keep_quantile_honest(self):
        """All-censored points report an infinite quantile and run to the
        cap rather than pretending the CI tightened."""
        spec = SweepSpec(
            name="censored",
            axes=(SweepAxis("n", (5,)),),
            builder=build_censored_point,
        )
        budget = ReplicateBudget.adaptive(
            target_ci=0.5, min_replicates=3, max_replicates=5, round_size=1
        )
        result = SweepRunner(spec, seed=0, budget=budget).run()
        (point,) = result.points
        assert point.estimate == float("inf")
        assert point.n_censored == point.n_replicates == 5
        assert point.budget_exhausted

    def test_evaluate_stopping_prefix_scan(self):
        """The pure stopping rule: NaN exclusion, floor, determinism."""
        budget = ReplicateBudget.adaptive(
            target_ci=0.5, min_replicates=3, max_replicates=8, round_size=2
        )
        sequence = np.random.SeedSequence(7)
        tight = [1.0, 1.01, 0.99, 1.0, 1.02]
        decision = evaluate_stopping(tight, budget, 0.5, sequence)
        assert decision.n_used == 3  # settles at the floor, never below
        assert not decision.budget_exhausted
        # NaN-poisoned prefix: needs more samples, but same rule applies.
        noisy = [float("nan"), float("nan"), 1.0, 1.01, 0.99, 1.0]
        decision = evaluate_stopping(noisy, budget, 0.5, sequence)
        assert decision.n_used is not None
        # All-NaN at the cap: settles exhausted instead of stalling.
        all_nan = [float("nan")] * 8
        decision = evaluate_stopping(all_nan, budget, 0.5, sequence)
        assert decision.n_used == 8
        assert decision.budget_exhausted
        # Identical inputs give identical decisions (keyed bootstrap).
        first = evaluate_stopping(tight, budget, 0.5, sequence)
        second = evaluate_stopping(tight, budget, 0.5, sequence)
        assert isinstance(first, StopDecision)
        assert first == second

    def test_quantile_and_bootstrap_helpers(self):
        assert quantile_estimate([3.0, 1.0, 2.0], 0.5) == 2.0
        assert quantile_estimate([1.0, float("inf")], 0.9) == float("inf")
        assert math.isnan(quantile_estimate([], 0.5))
        low, high = bootstrap_quantile_ci(
            [1.0, 2.0, 3.0, 4.0], 0.5, confidence=0.9, n_bootstrap=64,
            seed_sequence=np.random.SeedSequence(1),
        )
        assert 1.0 <= low <= high <= 4.0
        again = bootstrap_quantile_ci(
            [1.0, 2.0, 3.0, 4.0], 0.5, confidence=0.9, n_bootstrap=64,
            seed_sequence=np.random.SeedSequence(1),
        )
        assert (low, high) == again
        # Degenerate input: CI is honest about knowing nothing.
        assert bootstrap_quantile_ci(
            [1.0], 0.5, confidence=0.9, n_bootstrap=8,
            seed_sequence=np.random.SeedSequence(1),
        ) == (float("-inf"), float("inf"))


class TestCheckpointing:
    def test_checkpoint_resume_skips_settled_points(self, tmp_path):
        path = tmp_path / "ckpt.json"
        spec = small_spec()
        first = SweepRunner(
            spec, seed=5, budget=ADAPTIVE, checkpoint_path=path
        ).run()
        assert path.exists()
        backend = CountingBackend()
        resumed_runner = SweepRunner(
            spec, seed=5, budget=ADAPTIVE, backend=backend,
            checkpoint_path=path,
        )
        resumed = resumed_runner.run()
        assert backend.n_executed == 0  # every point came from the file
        assert resumed_runner.stats["points_resumed"] == spec.n_points
        assert sweep_json(resumed) == sweep_json(first)

    def test_partial_checkpoint_only_runs_missing_points(self, tmp_path):
        path = tmp_path / "ckpt.json"
        spec = small_spec()
        full = SweepRunner(
            spec, seed=5, budget=ADAPTIVE, checkpoint_path=path
        ).run()
        # Drop one settled point from the checkpoint to simulate a sweep
        # interrupted mid-grid.
        payload = json.loads(path.read_text())
        dropped = payload["points"].pop()
        path.write_text(json.dumps(payload))
        backend = CountingBackend()
        resumed = SweepRunner(
            spec, seed=5, budget=ADAPTIVE, backend=backend,
            checkpoint_path=path,
        ).run()
        assert backend.n_executed > 0
        assert sweep_json(resumed) == sweep_json(full)
        assert json.loads(path.read_text())["points"][-1] == dropped

    def test_checkpoint_rejects_changed_base_params(self, tmp_path):
        """Same name/axes/seed/budget but different base_params means
        different graphs — resuming across them must be refused."""
        path = tmp_path / "ckpt.json"

        def spec_with(pad):
            return SweepSpec(
                name="fp",
                axes=(SweepAxis("n", (5,)),),
                builder=build_padded_point,
                base_params={"pad": pad},
            )

        SweepRunner(spec_with(1), seed=0, budget=ReplicateBudget.fixed(2),
                    checkpoint_path=path).run()
        with pytest.raises(SweepError, match="different sweep"):
            SweepRunner(spec_with(2), seed=0,
                        budget=ReplicateBudget.fixed(2),
                        checkpoint_path=path).run()

    def test_checkpoint_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        spec = small_spec()
        SweepRunner(spec, seed=5, budget=ADAPTIVE,
                    checkpoint_path=path).run()
        with pytest.raises(SweepError, match="different sweep"):
            SweepRunner(spec, seed=6, budget=ADAPTIVE,
                        checkpoint_path=path).run()
        with pytest.raises(SweepError, match="different sweep"):
            SweepRunner(spec, seed=5, budget=ReplicateBudget.fixed(3),
                        checkpoint_path=path).run()

    def test_truncated_checkpoint_rejected_with_guidance(self, tmp_path):
        """Writes are atomic, so a torn file means external damage —
        resume must refuse it with a clear message, not crash mid-parse
        or silently restart."""
        path = tmp_path / "ckpt.json"
        spec = small_spec()
        SweepRunner(spec, seed=5, budget=ADAPTIVE,
                    checkpoint_path=path).run()
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(SweepError, match="delete it"):
            SweepRunner(spec, seed=5, budget=ADAPTIVE,
                        checkpoint_path=path).run()

    def test_structurally_corrupt_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "ckpt.json"
        spec = small_spec()
        SweepRunner(spec, seed=5, budget=ADAPTIVE,
                    checkpoint_path=path).run()
        payload = json.loads(path.read_text())
        payload["points"][0] = {"nonsense": True}
        path.write_text(json.dumps(payload))
        with pytest.raises(SweepError, match="structurally corrupt"):
            SweepRunner(spec, seed=5, budget=ADAPTIVE,
                        checkpoint_path=path).run()
        # Valid JSON that is simply not a sweep checkpoint.
        path.write_text("[1, 2, 3]")
        with pytest.raises(SweepError, match="not a sweep"):
            SweepRunner(spec, seed=5, budget=ADAPTIVE,
                        checkpoint_path=path).run()

    def test_partial_round_resume_is_byte_identical(self, tmp_path):
        """Crash-safe resume: kill the sweep after its first round, then
        resume from the checkpoint.  The pending points' sample prefixes
        are restored and the final result matches the uninterrupted run
        byte for byte."""
        path = tmp_path / "ckpt.json"
        spec = small_spec()
        budget = ReplicateBudget.adaptive(
            target_ci=0.05, min_replicates=3, max_replicates=9, round_size=3
        )
        uninterrupted = SweepRunner(spec, seed=5, budget=budget).run()

        class CrashAfterOneRound(CountingBackend):
            def execute(self, specs):
                if self.n_executed:
                    raise RuntimeError("simulated crash")
                return super().execute(specs)

        with pytest.raises(RuntimeError, match="simulated crash"):
            SweepRunner(
                spec, seed=5, budget=budget,
                backend=CrashAfterOneRound(), checkpoint_path=path,
            ).run()
        payload = json.loads(path.read_text())
        assert payload["partial"]  # round 1's samples survived the crash
        runner = SweepRunner(
            spec, seed=5, budget=budget,
            backend=CountingBackend(), checkpoint_path=path,
        )
        resumed = runner.run()
        assert runner.stats["replicates_resumed"] > 0
        assert sweep_json(resumed) == sweep_json(uninterrupted)


class TestSpecValidation:
    def test_spec_rejects_bad_shapes(self):
        axis = SweepAxis("n", (1, 2))
        with pytest.raises(SweepError):
            SweepSpec("s", (), builder=build_complete_point)
        with pytest.raises(SweepError):
            SweepSpec("s", (axis, SweepAxis("n", (3,))),
                      builder=build_complete_point)
        with pytest.raises(SweepError):
            SweepSpec("s", (axis,), builder=build_complete_point,
                      base_params={"n": 4})
        with pytest.raises(SweepError):
            SweepSpec("s", (axis,), builder="not-callable")
        with pytest.raises(SweepError):
            SweepSpec("s", (axis,), builder=build_complete_point) \
                .with_axis("missing", [1])

    def test_budget_validation(self):
        with pytest.raises(SweepError):
            ReplicateBudget(min_replicates=0)
        with pytest.raises(SweepError):
            ReplicateBudget(min_replicates=5, max_replicates=4)
        with pytest.raises(SweepError):
            ReplicateBudget(round_size=0)
        with pytest.raises(SweepError):
            ReplicateBudget(target_ci=0.0)
        with pytest.raises(SweepError):
            ReplicateBudget(confidence=1.0)
        assert not ReplicateBudget.fixed(4).is_adaptive
        assert ADAPTIVE.is_adaptive
        assert ReplicateBudget.from_dict(ADAPTIVE.to_dict()) == ADAPTIVE

    def test_point_config_validation(self):
        with pytest.raises(SweepError):
            PointConfig(
                graph=complete_graph(4),
                algorithm_factory=VanillaGossip,
                initial_values=np.zeros(4),
            )  # no budget at all
        with pytest.raises(SweepError):
            PointConfig(
                graph=complete_graph(4),
                algorithm_factory=VanillaGossip,
                initial_values=np.zeros(4),
                max_events=10,
                threshold=1.5,
            )

    def test_unpicklable_point_in_mixed_batch_fails_fast(self):
        """A sweep batch is heterogeneous: the picklability probe must
        catch a bad configuration even when the first one is fine."""
        from repro.errors import SimulationError

        spec = SweepSpec(
            name="mixed",
            axes=(SweepAxis("n", (5, 6)),),
            builder=build_mixed_pickle_point,
        )
        backend = ProcessPoolBackend(2)
        try:
            with pytest.raises(SimulationError, match="AlgorithmFactory"):
                SweepRunner(spec, seed=0, budget=ReplicateBudget.fixed(2),
                            backend=backend).run()
        finally:
            backend.shutdown()

    def test_builder_return_type_checked(self):
        spec = SweepSpec(
            name="bad",
            axes=(SweepAxis("n", (4,)),),
            builder=lambda **kw: "nonsense",
        )
        with pytest.raises(SweepError, match="PointConfig"):
            SweepRunner(spec, seed=0).run()

    def test_point_lookup(self):
        result = SweepRunner(small_spec(), seed=5,
                             budget=ReplicateBudget.fixed(2)).run()
        point = result.point(n=6)
        assert point.params["n"] == 6
        with pytest.raises(SweepError):
            result.point(n=999)
        with pytest.raises(SweepError):
            result.point(algorithm="vanilla")  # matches all three points

    def test_point_result_encoding_round_trips_non_finite(self):
        point = PointResult(
            index=0, params={"n": 4},
            estimate=float("inf"), ci_low=float("-inf"),
            ci_high=float("inf"), quantile=0.5, threshold=0.1,
            samples=[1.0, float("inf"), float("nan")],
            n_censored=1, n_diverged=1, budget_exhausted=True,
        )
        clone = PointResult.from_dict(
            json.loads(json.dumps(point.to_dict()))
        )
        assert clone.estimate == float("inf")
        assert clone.ci_low == float("-inf")
        assert clone.samples[1] == float("inf")
        assert math.isnan(clone.samples[2])
        assert clone.ci_relative_width == float("inf")


@pytest.mark.slow
class TestAcceptanceE3Sweep:
    """The PR's acceptance scenario, pinned as a regression test."""

    def test_smoke_e3_sweep_bit_identical_and_adaptive_saves(self):
        from repro.experiments.specs_sweeps import get_sweep

        spec = get_sweep("E3", scale="smoke").with_axis("n", [16, 24, 32])
        adaptive = ReplicateBudget.adaptive(
            target_ci=0.8, min_replicates=3, max_replicates=16, round_size=2
        )
        serial = SweepRunner(
            spec, seed=0, budget=adaptive, backend=SerialBackend()
        ).run()
        serial_json = sweep_json(serial)
        for n_workers in (2, 4):
            backend = ProcessPoolBackend(n_workers)
            pooled = SweepRunner(
                spec, seed=0, budget=adaptive, backend=backend
            ).run()
            backend.shutdown()
            assert sweep_json(pooled) == serial_json
        fixed = SweepRunner(
            spec, seed=0, budget=ReplicateBudget.fixed(16)
        ).run()
        saved = [
            p for p in serial.points
            if p.n_replicates < 16 and not p.budget_exhausted
        ]
        assert saved, "adaptive budget never beat the fixed budget"
        for point in saved:
            assert point.ci_relative_width <= 0.8
        assert serial.total_replicates < fixed.total_replicates

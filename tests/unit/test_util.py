"""Unit tests for the util layer (rng, math, tables, plots, io, timer)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import SerializationError
from repro.util.ascii_plot import line_plot, log_log_slope
from repro.util.mathx import (
    fit_log_law,
    fit_power_law,
    geometric_mean,
    log_ratio,
    quantile,
    relative_error,
    running_mean,
    safe_log,
    variance,
)
from repro.util.rng import (
    RngFactory,
    as_generator,
    iter_seeds,
    sample_without_replacement,
    spawn_generators,
)
from repro.util.serialization import from_json_file, to_json_file, to_jsonable
from repro.util.tables import Table
from repro.util.timer import Timer
from repro.util.validation import (
    check_in_range,
    check_integer,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestRng:
    def test_as_generator_accepts_many_inputs(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen
        assert isinstance(as_generator(5), np.random.Generator)
        assert isinstance(as_generator(None), np.random.Generator)
        assert isinstance(
            as_generator(np.random.SeedSequence(1)), np.random.Generator
        )
        with pytest.raises(TypeError):
            as_generator("seed")

    def test_spawn_generators_independent_but_reproducible(self):
        first = [g.random() for g in spawn_generators(7, 3)]
        second = [g.random() for g in spawn_generators(7, 3)]
        assert first == second
        assert len(set(first)) == 3
        with pytest.raises(ValueError):
            spawn_generators(7, -1)

    def test_factory_streams_are_stable_and_distinct(self):
        factory = RngFactory(seed=11)
        a1 = factory.stream("alpha").random()
        b1 = factory.stream("beta").random()
        repeat = RngFactory(seed=11)
        assert repeat.stream("alpha").random() == a1
        assert repeat.stream("beta").random() == b1
        assert a1 != b1

    def test_factory_repeated_name_advances(self):
        factory = RngFactory(seed=3)
        x = factory.stream("s").random()
        y = factory.stream("s").random()
        assert x != y

    def test_replicate_streams(self):
        factory = RngFactory(seed=1)
        streams = factory.replicate_streams("rep", 4)
        values = [s.random() for s in streams]
        assert len(set(values)) == 4

    def test_iter_seeds(self):
        seeds = list(iter_seeds(42, 5))
        assert len(seeds) == 5 and len(set(seeds)) == 5
        assert all(0 <= s < 2**63 for s in seeds)

    def test_sample_without_replacement(self, rng):
        sample = sample_without_replacement(rng, list(range(10)), 4)
        assert len(np.unique(sample)) == 4
        with pytest.raises(ValueError):
            sample_without_replacement(rng, [1, 2], 3)


class TestMathx:
    def test_safe_log_floors(self):
        assert safe_log(0.0) == math.log(1e-300)
        assert safe_log(math.e) == pytest.approx(1.0)

    def test_log_ratio(self):
        assert log_ratio(4.0, 2.0) == pytest.approx(math.log(2.0))
        with pytest.raises(ValueError):
            log_ratio(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([0.0, 5.0]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([-1.0])

    def test_relative_error(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)

    def test_running_mean(self):
        assert running_mean([2.0, 4.0, 6.0]).tolist() == [2.0, 3.0, 4.0]
        with pytest.raises(ValueError):
            running_mean(np.zeros((2, 2)))

    def test_quantile_and_variance(self):
        assert quantile([1.0, 2.0, 3.0], 0.5) == 2.0
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)
        assert variance([1.0, -1.0]) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            variance([])

    def test_fit_power_law_recovers_exponent(self):
        xs = np.array([1.0, 2.0, 4.0, 8.0])
        ys = 3.0 * xs**1.7
        exponent, prefactor = fit_power_law(xs, ys)
        assert exponent == pytest.approx(1.7)
        assert prefactor == pytest.approx(3.0)

    def test_fit_power_law_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0])

    def test_fit_log_law(self):
        xs = np.array([1.0, math.e, math.e**2])
        ys = 5.0 * np.log(xs) + 2.0
        slope, intercept = fit_log_law(xs, ys)
        assert slope == pytest.approx(5.0)
        assert intercept == pytest.approx(2.0)


class TestTables:
    def test_render_alignment(self):
        table = Table(["a", "value"], title="t")
        table.add_row([1, 2.5])
        table.add_row(["long-cell", 3])
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "t"
        assert all(len(line) <= max(len(ln) for ln in lines) for line in lines)
        assert "long-cell" in text

    def test_row_length_validated(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_float_and_bool_formatting(self):
        table = Table(["x"])
        table.add_rows([[0.123456789], [True]])
        rows = table.to_rows()
        assert rows[0][0] == "0.1235"
        assert rows[1][0] == "yes"
        assert table.n_rows == 2

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        text = line_plot({"a": ([1, 2, 3], [1, 4, 9])}, title="demo")
        assert "demo" in text
        assert "legend: o a" in text
        assert "o" in text

    def test_log_axes_require_positive(self):
        with pytest.raises(ValueError):
            line_plot({"a": ([0.0, 1.0], [1.0, 2.0])}, logx=True)

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            line_plot({"a": ([1, 2], [1])})
        with pytest.raises(ValueError):
            line_plot({})

    def test_multiple_series_distinct_markers(self):
        text = line_plot(
            {"one": ([1, 2], [1, 2]), "two": ([1, 2], [2, 1])}
        )
        assert "o one" in text and "x two" in text

    def test_log_log_slope(self):
        xs = [1.0, 2.0, 4.0]
        ys = [2.0, 8.0, 32.0]
        assert log_log_slope(xs, ys) == pytest.approx(2.0)


class TestSerialization:
    def test_jsonable_handles_numpy(self):
        payload = to_jsonable(
            {"a": np.int64(3), "b": np.float64(2.5), "c": np.arange(3),
             "d": (1, 2), 5: "x"}
        )
        assert payload == {"a": 3, "b": 2.5, "c": [0, 1, 2], "d": [1, 2],
                           "5": "x"}

    def test_jsonable_uses_to_dict(self):
        class Thing:
            def to_dict(self):
                return {"k": 1}

        assert to_jsonable(Thing()) == {"k": 1}

    def test_jsonable_rejects_unknown(self):
        with pytest.raises(SerializationError):
            to_jsonable(object())

    def test_file_roundtrip(self, tmp_path):
        data = {"x": [1, 2, 3], "y": {"z": 4.5}}
        path = to_json_file(data, tmp_path / "out" / "result.json")
        assert from_json_file(path) == data

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError, match="no such"):
            from_json_file(tmp_path / "absent.json")

    def test_invalid_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(SerializationError, match="invalid JSON"):
            from_json_file(bad)

    def test_atomic_write_leaves_no_temp_residue(self, tmp_path):
        path = to_json_file({"x": 1}, tmp_path / "result.json")
        assert [p.name for p in tmp_path.iterdir()] == [path.name]

    def test_failed_serialization_preserves_existing_file(self, tmp_path):
        """A crash (or unserializable value) mid-write must leave the
        previous complete file in place — checkpoint resume depends on
        never seeing a torn file."""
        target = tmp_path / "result.json"
        to_json_file({"generation": 1}, target)
        with pytest.raises(SerializationError):
            to_json_file({"bad": object()}, target)
        assert from_json_file(target) == {"generation": 1}
        assert [p.name for p in tmp_path.iterdir()] == [target.name]


class TestTimerAndValidation:
    def test_timer_measures(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.elapsed >= 0.0
        frozen = timer.elapsed
        assert timer.elapsed == frozen

    def test_validators(self):
        assert check_positive(1.0, "x") == 1.0
        assert check_non_negative(0.0, "x") == 0.0
        assert check_probability(0.5, "x") == 0.5
        assert check_type(3, int, "x") == 3
        assert check_integer(np.int64(4), "x") == 4
        assert check_in_range(5.0, "x", low=0, high=10) == 5.0
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        with pytest.raises(ValueError):
            check_non_negative(-1.0, "x")
        with pytest.raises(ValueError):
            check_probability(1.1, "x")
        with pytest.raises(TypeError):
            check_type(3, str, "x")
        with pytest.raises(TypeError):
            check_integer(True, "x")
        with pytest.raises(ValueError):
            check_in_range(11.0, "x", high=10)
        with pytest.raises(ValueError):
            check_in_range(0.0, "x", low=0, low_inclusive=False)

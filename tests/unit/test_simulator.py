"""Unit tests for the event-driven simulator."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.schedule import RoundRobinSchedule, ScriptedSchedule
from repro.engine.recorder import TraceRecorder
from repro.engine.simulator import Simulator, simulate
from repro.errors import SimulationError
from repro.graphs.graph import Graph
from repro.graphs.topologies import path_graph


class TestBasicRuns:
    def test_two_node_graph_converges_in_one_event(self):
        graph = Graph(2, [(0, 1)])
        result = simulate(graph, VanillaGossip(), [0.0, 2.0], seed=0,
                          target_ratio=1e-12)
        assert result.n_events == 1
        assert np.allclose(result.values, 1.0)
        assert result.stopped_by == "target_ratio"

    def test_sum_conserved(self, k6):
        result = simulate(
            k6, VanillaGossip(), [float(i) for i in range(6)], seed=1,
            target_ratio=1e-10,
        )
        assert result.sum_drift < 1e-9
        assert result.values.mean() == pytest.approx(2.5)

    def test_variance_reported_consistently(self, k6):
        x0 = [float(i) for i in range(6)]
        result = simulate(k6, VanillaGossip(), x0, seed=2, target_ratio=1e-6)
        assert result.variance_initial == pytest.approx(float(np.var(x0)))
        assert result.variance_final <= 1e-6 * result.variance_initial
        assert result.variance_ratio <= 1e-6

    def test_zero_variance_start_returns_immediately(self, k6):
        result = simulate(k6, VanillaGossip(), np.ones(6), seed=0,
                          target_ratio=0.5)
        assert result.n_events == 0
        assert result.stopped_by == "target_ratio"

    def test_max_events_budget(self, k6):
        result = simulate(k6, VanillaGossip(), [1.0, -1.0, 0, 0, 0, 0],
                          seed=0, max_events=10)
        assert result.n_events == 10
        assert result.stopped_by == "max_events"

    def test_max_time_budget(self, k6):
        result = simulate(k6, VanillaGossip(), [1.0, -1.0, 0, 0, 0, 0],
                          seed=0, max_time=0.5)
        assert result.duration >= 0.5
        assert result.stopped_by == "max_time"

    def test_requires_some_budget(self, k6):
        with pytest.raises(SimulationError, match="at least one"):
            simulate(k6, VanillaGossip(), np.zeros(6), seed=0)

    def test_shape_validation(self, k6):
        with pytest.raises(SimulationError):
            Simulator(k6, VanillaGossip(), np.zeros(4))

    def test_edgeless_graph_rejected(self):
        with pytest.raises(SimulationError, match="no edges"):
            Simulator(Graph(3, []), VanillaGossip(), np.zeros(3))

    def test_reproducible_with_seed(self, k6):
        x0 = [float(i) for i in range(6)]
        a = simulate(k6, VanillaGossip(), x0, seed=42, max_events=500)
        b = simulate(k6, VanillaGossip(), x0, seed=42, max_events=500)
        assert np.array_equal(a.values, b.values)
        assert a.duration == b.duration


class TestDeterministicClocks:
    def test_scripted_sequence_applies_in_order(self):
        graph = path_graph(3)
        schedule = ScriptedSchedule.uniform_times(
            [graph.edge_id(0, 1), graph.edge_id(1, 2)]
        )
        result = simulate(graph, VanillaGossip(), [4.0, 0.0, 0.0],
                          clock=schedule, max_events=10)
        # (0,1) -> [2,2,0]; then (1,2) -> [2,1,1].
        assert result.values.tolist() == [2.0, 1.0, 1.0]
        assert result.stopped_by == "clock_exhausted"

    def test_round_robin_touches_every_edge(self, k6):
        schedule = RoundRobinSchedule(k6.n_edges)
        result = simulate(k6, VanillaGossip(), [float(i) for i in range(6)],
                          clock=schedule, max_events=k6.n_edges)
        assert result.n_events == k6.n_edges
        assert result.n_updates == k6.n_edges

    def test_clock_edge_count_mismatch_rejected(self, k6):
        with pytest.raises(SimulationError, match="clock models"):
            Simulator(k6, VanillaGossip(), np.zeros(6),
                      clock=RoundRobinSchedule(3))

    def test_clock_without_n_edges_rejected(self, k6):
        """Regression: a clock lacking n_edges raised a raw AttributeError
        instead of a SimulationError explaining the protocol."""
        with pytest.raises(SimulationError, match="n_edges"):
            Simulator(k6, VanillaGossip(), np.zeros(6), clock=object())

    def test_clock_without_next_batch_rejected(self, k6):
        """Both halves of the batch protocol are validated up front."""
        from types import SimpleNamespace

        with pytest.raises(SimulationError, match="next_batch"):
            Simulator(k6, VanillaGossip(), np.zeros(6),
                      clock=SimpleNamespace(n_edges=15))


class TestCrossings:
    def test_monotone_crossing_consistency(self, k6):
        threshold = math.e**-2
        result = simulate(
            k6, VanillaGossip(), [float(i) for i in range(6)], seed=3,
            target_ratio=1e-8, thresholds=(threshold,),
        )
        crossing = result.crossing(threshold)
        assert crossing.first_below is not None
        assert crossing.last_above <= crossing.first_below
        assert crossing.first_below <= result.duration

    def test_multiple_thresholds_ordered(self, k6):
        result = simulate(
            k6, VanillaGossip(), [float(i) for i in range(6)], seed=4,
            target_ratio=1e-8, thresholds=(0.5, 0.1, 0.01),
        )
        t_50 = result.crossing(0.5).first_below
        t_10 = result.crossing(0.1).first_below
        t_01 = result.crossing(0.01).first_below
        assert t_50 <= t_10 <= t_01

    def test_untracked_threshold_raises(self, k6):
        result = simulate(k6, VanillaGossip(), [1.0, 0, 0, 0, 0, -1.0],
                          seed=0, max_events=5)
        with pytest.raises(KeyError, match="not tracked"):
            result.crossing(0.123)

    def test_nonconvex_last_above_beyond_first_below(self, medium_dumbbell):
        """Algorithm A's excursions make last_above > first_below.

        Construction: mostly within-side noise plus a small imbalance.
        Internal mixing pushes the variance below e^-2 of its start long
        before the first swap (epoch 12); the swap then spikes it back
        above the threshold before the system finally settles.
        """
        partition = medium_dumbbell.partition
        algo = NonConvexSparseCutGossip(partition, epoch_length=12, gain="exact")
        rng = np.random.default_rng(17)
        x0 = rng.normal(0.0, 1.0, size=32)
        x0 += np.where(partition.side == 0, 0.3, -0.3)
        x0 -= x0.mean()
        result = simulate(
            medium_dumbbell.graph, algo, x0, seed=5, max_time=100.0,
            target_ratio=1e-9, thresholds=(math.e**-2,),
        )
        crossing = result.crossing(math.e**-2)
        assert crossing.first_below is not None
        assert crossing.last_above > crossing.first_below
        assert result.stopped_by == "target_ratio"


class TestDivergenceGuard:
    def test_diverging_algorithm_aborts(self, k6):
        class Doubler(VanillaGossip):
            name = "doubler"
            monotone_variance = False

            def on_tick(self, edge_id, u, v, time, tick_count, values):
                return 2.0 * values[u] + 1.0, 2.0 * values[v] - 1.0

        result = simulate(k6, Doubler(), [1.0, -1.0, 0, 0, 0, 0], seed=0,
                          max_events=1_000_000, divergence_ratio=1e6)
        assert result.stopped_by == "diverged"
        assert result.n_events < 1_000_000


class TestRecorder:
    def test_samples_taken(self, k6):
        recorder = TraceRecorder(sample_every=10)
        result = simulate(k6, VanillaGossip(), [float(i) for i in range(6)],
                          seed=6, max_events=100, recorder=recorder)
        assert result.trace_times is not None
        assert recorder.n_samples >= 11  # t=0, 10 interior, final
        assert recorder.variances[0] == pytest.approx(result.variance_initial)

    def test_probes_evaluated(self, k6):
        recorder = TraceRecorder(
            sample_every=25, probes={"max": lambda x: float(np.max(x))}
        )
        simulate(k6, VanillaGossip(), [float(i) for i in range(6)],
                 seed=7, max_events=100, recorder=recorder)
        assert len(recorder.probe("max")) == recorder.n_samples
        with pytest.raises(KeyError):
            recorder.probe("unknown")

    def test_recorder_clear(self, k6):
        recorder = TraceRecorder(sample_every=10)
        simulate(k6, VanillaGossip(), [1.0, 0, 0, 0, 0, -1.0], seed=0,
                 max_events=50, recorder=recorder)
        recorder.clear()
        assert recorder.n_samples == 0

    def test_sample_every_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(sample_every=0)

    def test_final_sample_not_duplicated(self, k6):
        """Regression: when the last event coincided with a periodic
        sample, the endpoint was recorded twice, producing repeated
        (t, variance) trace points."""
        recorder = TraceRecorder(sample_every=10)
        result = simulate(k6, VanillaGossip(), [float(i) for i in range(6)],
                          seed=6, max_events=100, recorder=recorder)
        assert result.n_events == 100  # ends exactly on a sampling point
        assert recorder.n_samples == 11  # t=0 plus 10 periodic samples
        assert np.all(np.diff(recorder.times) > 0)

    def test_final_sample_recorded_between_sampling_points(self, k6):
        """The endpoint is still recorded when the run stops mid-period."""
        recorder = TraceRecorder(sample_every=10)
        result = simulate(k6, VanillaGossip(), [float(i) for i in range(6)],
                          seed=6, max_events=95, recorder=recorder)
        assert result.n_events == 95
        assert recorder.n_samples == 11  # t=0, 9 periodic, final
        assert recorder.times[-1] == pytest.approx(result.duration)


class TestIncrementalStatistics:
    def test_incremental_variance_matches_recompute(self, k6):
        """Force frequent exact recomputes and compare trajectories."""
        x0 = [float(i) for i in range(6)]
        fast = Simulator(k6, VanillaGossip(), x0, seed=8, recompute_every=1)
        loose = Simulator(k6, VanillaGossip(), x0, seed=8,
                          recompute_every=10_000)
        result_fast = fast.run(max_events=2_000)
        result_loose = loose.run(max_events=2_000)
        assert np.allclose(result_fast.values, result_loose.values)
        assert result_fast.variance_final == pytest.approx(
            result_loose.variance_final, rel=1e-9, abs=1e-15
        )

    def test_run_parameter_validation(self, k6):
        simulator = Simulator(k6, VanillaGossip(), np.zeros(6))
        with pytest.raises(SimulationError):
            simulator.run(max_time=-1.0)
        with pytest.raises(SimulationError):
            simulator.run(max_events=0)
        with pytest.raises(SimulationError):
            simulator.run(target_ratio=-0.5)
        with pytest.raises(SimulationError):
            simulator.run(max_events=5, thresholds=(0.0,))


class TestSimulateForwarding:
    """Regression: simulate() must forward the constructor-only knobs.

    ``batch_size`` and ``recompute_every`` are Simulator() parameters,
    not run() kwargs — an earlier version swallowed them into
    ``**run_kwargs`` where run() rejected them.
    """

    class CapturingClock:
        """Records every requested batch size."""

        def __init__(self, n_edges: int) -> None:
            self.n_edges = n_edges
            self.requests: "list[int]" = []

        def next_batch(self, k: int):
            self.requests.append(k)
            times = np.linspace(0.1, 0.1 * k, k)
            return times, np.zeros(k, dtype=np.int64)

    def test_batch_size_reaches_the_clock(self, k6):
        clock = self.CapturingClock(k6.n_edges)
        simulate(k6, VanillaGossip(), [float(i) for i in range(6)],
                 clock=clock, batch_size=17, max_events=40)
        assert clock.requests == [17, 17, 6]

    def test_recompute_every_is_validated_eagerly(self, k6):
        # Reaching the constructor's validation proves forwarding: as a
        # run() kwarg this would raise "unexpected keyword" instead.
        with pytest.raises(SimulationError, match="recompute_every"):
            simulate(k6, VanillaGossip(), np.zeros(6),
                     recompute_every=0, max_events=10)

    def test_recompute_cadence_does_not_change_the_trajectory(self, k6):
        # recompute_every only refreshes the incremental statistics; the
        # event stream and value trajectory must be untouched.  (batch_size
        # is NOT stream-invariant: it changes how the clock's generator
        # draws interleave, so same-seed runs only match at equal sizes.)
        x0 = [float(i) for i in range(6)]
        a = simulate(k6, VanillaGossip(), x0, seed=5, max_events=2_000)
        b = simulate(k6, VanillaGossip(), x0, seed=5, max_events=2_000,
                     recompute_every=7)
        assert np.array_equal(a.values, b.values)
        assert a.duration == b.duration
        assert a.n_events == b.n_events
        assert a.variance_final == pytest.approx(
            b.variance_final, rel=1e-9, abs=1e-15
        )

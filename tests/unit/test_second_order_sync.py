"""Unit tests for the synchronous second-order diffusion baseline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms.second_order import (
    SecondOrderDiffusionSync,
    diffusion_matrix,
    optimal_second_order_beta,
    second_largest_modulus,
)
from repro.errors import AlgorithmError
from repro.graphs.topologies import complete_graph, cycle_graph, path_graph


class TestDiffusionMatrix:
    def test_doubly_stochastic(self, c8):
        matrix = diffusion_matrix(c8)
        assert np.allclose(matrix.sum(axis=0), 1.0)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.all(matrix >= -1e-12)

    def test_custom_step(self, c8):
        matrix = diffusion_matrix(c8, step=0.1)
        assert matrix[0, 0] == pytest.approx(1.0 - 0.1 * 2)

    def test_invalid_step(self, c8):
        with pytest.raises(AlgorithmError):
            diffusion_matrix(c8, step=-0.1)

    def test_second_largest_modulus_complete(self):
        # K_n with h = 1/n: M = I - L/n has eigenvalues {1, 0, ..., 0}.
        matrix = diffusion_matrix(complete_graph(8), step=1.0 / 8.0)
        assert second_largest_modulus(matrix) == pytest.approx(0.0, abs=1e-9)


class TestOptimalBeta:
    def test_in_range(self):
        for graph in (path_graph(12), cycle_graph(9), complete_graph(6)):
            beta = optimal_second_order_beta(graph)
            assert 1.0 <= beta < 2.0

    def test_slower_graphs_need_larger_beta(self):
        beta_path = optimal_second_order_beta(path_graph(30))
        beta_complete = optimal_second_order_beta(complete_graph(30))
        assert beta_path > beta_complete


class TestSyncRun:
    def test_converges_on_cycle(self):
        solver = SecondOrderDiffusionSync(cycle_graph(12))
        x0 = np.arange(12, dtype=float)
        final, trace = solver.run(x0, target_ratio=1e-4, max_rounds=10_000)
        assert trace[-1] / trace[0] <= 1e-4
        assert final.mean() == pytest.approx(x0.mean())

    def test_second_order_beats_first_order(self):
        """The classical quadratic speedup on a slow-mixing path."""
        graph = path_graph(40)
        x0 = np.arange(40, dtype=float)
        second = SecondOrderDiffusionSync(graph)
        first = SecondOrderDiffusionSync(graph, beta=1.0)
        rounds_second = second.rounds_to_ratio(x0, max_rounds=200_000)
        rounds_first = first.rounds_to_ratio(x0, max_rounds=200_000)
        assert rounds_second < rounds_first / 2

    def test_rounds_to_ratio_zero_variance(self):
        solver = SecondOrderDiffusionSync(cycle_graph(6))
        assert solver.rounds_to_ratio(np.ones(6)) == 0

    def test_trace_starts_at_initial_variance(self):
        solver = SecondOrderDiffusionSync(cycle_graph(6))
        x0 = np.arange(6, dtype=float)
        _, trace = solver.run(x0, target_ratio=0.5)
        assert trace[0] == pytest.approx(float(np.var(x0)))

    def test_validation(self):
        solver = SecondOrderDiffusionSync(cycle_graph(6))
        with pytest.raises(AlgorithmError):
            solver.run(np.zeros(5))
        with pytest.raises(AlgorithmError):
            solver.run(np.zeros(6), max_rounds=0)
        with pytest.raises(AlgorithmError):
            SecondOrderDiffusionSync(cycle_graph(6), beta=2.5)

    def test_round_count_matches_theory_scale(self):
        """Optimal second order on a path needs ~sqrt of first-order rounds."""
        graph = path_graph(24)
        x0 = np.sign(np.arange(24) - 11.5).astype(float)
        solver = SecondOrderDiffusionSync(graph)
        rounds = solver.rounds_to_ratio(x0, target_ratio=math.e**-2, max_rounds=100_000)
        rho = second_largest_modulus(diffusion_matrix(graph))
        first_order_scale = 2.0 / -math.log(rho)
        assert rounds < first_order_scale  # strictly better than 1st order

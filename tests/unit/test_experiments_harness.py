"""Unit tests for workloads, the report harness, reporting and the CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments.cli import build_parser, main
from repro.experiments.harness import (
    ExperimentReport,
    ShapeCheck,
    pick,
    resolve_scale,
)
from repro.experiments.reporting import render_summary, save_report
from repro.experiments.specs import EXPERIMENTS, get_experiment
from repro.experiments.workloads import (
    bimodal_noise,
    cut_aligned,
    gaussian,
    linear_gradient,
    make_workload,
    spike,
)
from repro.util.tables import Table


class TestWorkloads:
    def test_cut_aligned_matches_paper(self, medium_dumbbell):
        partition = medium_dumbbell.partition
        values = cut_aligned(partition)
        assert np.all(values[partition.vertices_1] == 1.0)
        assert np.all(values[partition.vertices_2] == -16 / 16)
        assert values.mean() == pytest.approx(0.0, abs=1e-12)

    def test_cut_aligned_unbalanced_zero_mean(self, unbalanced_partition):
        values = cut_aligned(unbalanced_partition)
        assert values.sum() == pytest.approx(0.0, abs=1e-12)
        assert np.all(values[unbalanced_partition.vertices_2] == -2 / 4)

    def test_gaussian_zero_mean(self):
        values = gaussian(50, rng=1)
        assert values.mean() == pytest.approx(0.0, abs=1e-12)
        with pytest.raises(ExperimentError):
            gaussian(0)
        with pytest.raises(ExperimentError):
            gaussian(5, scale=-1)

    def test_spike(self):
        values = spike(10, vertex=3)
        assert values.mean() == pytest.approx(0.0, abs=1e-12)
        assert np.argmax(values) == 3
        with pytest.raises(ExperimentError):
            spike(5, vertex=9)

    def test_linear_gradient(self):
        values = linear_gradient(5)
        assert values.tolist() == [-2.0, -1.0, 0.0, 1.0, 2.0]

    def test_bimodal_noise(self, medium_dumbbell):
        values = bimodal_noise(medium_dumbbell.partition, rng=2, noise=0.1)
        assert values.mean() == pytest.approx(0.0, abs=1e-12)
        with pytest.raises(ExperimentError):
            bimodal_noise(medium_dumbbell.partition, noise=-0.5)

    def test_make_workload_dispatch(self, medium_dumbbell):
        graph = medium_dumbbell.graph
        partition = medium_dumbbell.partition
        rng = np.random.default_rng(0)
        for name in ("cut_aligned", "gaussian", "spike", "linear_gradient",
                     "bimodal_noise"):
            sampler = make_workload(name, graph=graph, partition=partition)
            values = np.asarray(sampler(rng))
            assert values.shape == (32,)
        with pytest.raises(ExperimentError, match="unknown workload"):
            make_workload("nope", graph=graph)
        with pytest.raises(ExperimentError, match="requires a partition"):
            make_workload("cut_aligned", graph=graph)


class TestReportHarness:
    def test_report_checks_and_render(self):
        report = ExperimentReport("EX", "title", "claim")
        table = Table(["a"])
        table.add_row([1])
        report.tables.append(table)
        report.findings["speedup"] = 3.5
        report.add_check("works", True, "detail-1")
        report.add_check("fails", False, "detail-2")
        assert not report.all_checks_passed
        text = report.render()
        assert "[PASS] works" in text and "[FAIL] fails" in text
        assert "speedup = 3.5" in text
        info = report.to_dict()
        assert info["all_checks_passed"] is False
        assert info["tables"][0]["rows"] == [["1"]]

    def test_shape_check_dataclass(self):
        check = ShapeCheck("name", True, "d")
        assert check.to_dict() == {"name": "name", "passed": True, "detail": "d"}

    def test_scale_resolution(self, monkeypatch):
        assert resolve_scale("smoke") == "smoke"
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert resolve_scale(None) == "full"
        monkeypatch.delenv("REPRO_SCALE")
        assert resolve_scale(None) == "default"
        with pytest.raises(ExperimentError):
            resolve_scale("huge")

    def test_pick(self):
        assert pick("smoke", smoke=1, default=2, full=3) == 1
        assert pick("full", smoke=1, default=2, full=3) == 3


class TestRegistryAndReporting:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 15)}

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("e3") is EXPERIMENTS["E3"]
        with pytest.raises(ExperimentError):
            get_experiment("E99")

    def test_save_report_artifacts(self, tmp_path):
        report = ExperimentReport("E0", "t", "c")
        report.add_check("x", True, "d")
        text_path, json_path = save_report(report, tmp_path)
        assert text_path.exists() and json_path.exists()
        assert "E0" in text_path.read_text()

    def test_render_summary(self):
        good = ExperimentReport("E1", "one", "c")
        good.add_check("a", True, "d")
        bad = ExperimentReport("E2", "two", "c")
        bad.add_check("a", False, "d")
        summary = render_summary([good, bad])
        assert "[PASS] E1" in summary and "[FAIL] E2" in summary


class TestCli:
    def test_parser_list_and_run(self):
        parser = build_parser()
        args = parser.parse_args(["run", "E3", "--scale", "smoke"])
        assert args.experiment == "E3" and args.scale == "smoke"
        assert parser.parse_args(["list"]).command == "list"

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1:" in out and "E10:" in out

    def test_run_command_smoke(self, tmp_path, capsys):
        code = main(["run", "E7", "--scale", "smoke", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert "E7" in out
        assert (tmp_path / "e7.json").exists()
        assert code == 0

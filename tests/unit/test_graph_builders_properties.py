"""Unit tests for graph builders and structural property helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs.builders import (
    add_edges,
    disjoint_union,
    graph_from_adjacency_matrix,
    graph_from_edge_list,
    relabel_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    connected_components,
    degree_statistics,
    density,
    diameter,
    is_connected,
    shortest_path_lengths,
)
from repro.graphs.topologies import complete_graph, cycle_graph, path_graph


class TestBuilders:
    def test_from_edge_list_infers_size(self):
        graph = graph_from_edge_list([(0, 3), (1, 2)])
        assert graph.n_vertices == 4

    def test_from_edge_list_explicit_size(self):
        graph = graph_from_edge_list([(0, 1)], n_vertices=5)
        assert graph.n_vertices == 5

    def test_from_adjacency_roundtrip(self, c8):
        rebuilt = graph_from_adjacency_matrix(c8.adjacency_matrix())
        assert rebuilt == c8

    def test_adjacency_validation(self):
        with pytest.raises(GraphError, match="square"):
            graph_from_adjacency_matrix(np.ones((2, 3)))
        with pytest.raises(GraphError, match="symmetric"):
            graph_from_adjacency_matrix(np.array([[0, 1], [0, 0]]))
        with pytest.raises(GraphError, match="diagonal"):
            graph_from_adjacency_matrix(np.eye(2))
        with pytest.raises(GraphError, match="0 or 1"):
            graph_from_adjacency_matrix(np.array([[0, 2], [2, 0]]))

    def test_relabel_permutes_edges(self):
        graph = path_graph(3)
        relabeled = relabel_graph(graph, [2, 1, 0])
        assert relabeled.has_edge(2, 1) and relabeled.has_edge(1, 0)

    def test_relabel_validates_permutation(self, triangle):
        with pytest.raises(GraphError, match="permutation"):
            relabel_graph(triangle, [0, 0, 1])
        with pytest.raises(GraphError, match="length"):
            relabel_graph(triangle, [0, 1])

    def test_disjoint_union(self):
        union = disjoint_union(path_graph(2), path_graph(3))
        assert union.n_vertices == 5
        assert union.n_edges == 3
        assert not union.is_connected()

    def test_add_edges(self):
        graph = add_edges(path_graph(3), [(0, 2)])
        assert graph.n_edges == 3


class TestProperties:
    def test_is_connected(self, c8):
        assert is_connected(c8)
        assert not is_connected(Graph(3, [(0, 1)]))

    def test_connected_components(self):
        graph = Graph(5, [(0, 1), (2, 3)])
        components = connected_components(graph)
        assert [c.tolist() for c in components] == [[0, 1], [2, 3], [4]]

    def test_shortest_paths(self):
        distances = shortest_path_lengths(path_graph(5), 0)
        assert distances.tolist() == [0, 1, 2, 3, 4]

    def test_shortest_paths_unreachable(self):
        distances = shortest_path_lengths(Graph(3, [(0, 1)]), 0)
        assert distances[2] == -1

    @pytest.mark.parametrize(
        "graph,expected",
        [
            (path_graph(6), 5),
            (cycle_graph(8), 4),
            (complete_graph(5), 1),
        ],
    )
    def test_diameter(self, graph, expected):
        assert diameter(graph) == expected

    def test_diameter_disconnected(self):
        with pytest.raises(DisconnectedGraphError):
            diameter(Graph(3, [(0, 1)]))

    def test_degree_statistics(self, small_path):
        stats = degree_statistics(small_path)
        assert stats.minimum == 1
        assert stats.maximum == 2
        assert stats.mean == pytest.approx(1.5)
        assert not stats.is_regular
        assert degree_statistics(cycle_graph(5)).is_regular
        assert "minimum" in stats.to_dict()

    def test_density(self):
        assert density(complete_graph(5)) == pytest.approx(1.0)
        assert density(Graph(1, [])) == 0.0

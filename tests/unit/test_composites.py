"""Unit tests for bridged-pair builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.composites import (
    bridged_pair,
    dumbbell_graph,
    join_graphs,
    two_cliques,
    two_erdos_renyi,
    two_expanders,
    two_grids,
)
from repro.graphs.topologies import complete_graph, path_graph


class TestJoinGraphs:
    def test_vertex_and_edge_counts(self):
        pair = join_graphs(complete_graph(4), complete_graph(5), [(0, 0)])
        assert pair.graph.n_vertices == 9
        assert pair.graph.n_edges == 6 + 10 + 1

    def test_partition_matches_sides(self):
        pair = join_graphs(path_graph(3), path_graph(4), [(2, 0)])
        assert pair.partition.n1 == 3
        assert pair.partition.n2 == 4
        assert pair.partition.cut_size == 1

    def test_bridge_edge_ids_are_cut_edges(self):
        pair = join_graphs(complete_graph(3), complete_graph(3), [(0, 0), (2, 1)])
        assert set(pair.bridge_edge_ids.tolist()) == set(
            pair.partition.cut_edge_ids.tolist()
        )

    def test_designated_edge_is_a_bridge(self):
        pair = two_cliques(4, 4, n_bridges=3)
        assert pair.designated_edge in pair.bridge_edge_ids

    def test_no_bridges_rejected(self):
        with pytest.raises(GraphError, match="at least one bridge"):
            join_graphs(complete_graph(3), complete_graph(3), [])

    def test_bad_bridge_endpoint_rejected(self):
        with pytest.raises(GraphError, match="not a vertex"):
            join_graphs(complete_graph(3), complete_graph(3), [(5, 0)])

    def test_duplicate_bridge_rejected(self):
        with pytest.raises(GraphError, match="duplicate"):
            join_graphs(complete_graph(3), complete_graph(3), [(0, 0), (0, 0)])

    def test_to_dict_summary(self):
        info = dumbbell_graph(8).to_dict()
        assert info["n1"] == 4 and info["cut_size"] == 1


class TestFamilies:
    def test_dumbbell_structure(self):
        pair = dumbbell_graph(12)
        assert pair.graph.n_vertices == 12
        assert pair.graph.n_edges == 2 * 15 + 1
        assert pair.partition.cut_size == 1
        ok1, ok2 = pair.partition.sides_connected()
        assert ok1 and ok2

    def test_dumbbell_odd_size_rejected(self):
        with pytest.raises(GraphError):
            dumbbell_graph(7)
        with pytest.raises(GraphError):
            dumbbell_graph(2)

    def test_two_cliques_unbalanced(self):
        pair = two_cliques(3, 9, n_bridges=2)
        assert pair.partition.n1 == 3
        assert pair.partition.cut_size == 2

    def test_two_cliques_random_bridges_distinct(self):
        pair = two_cliques(6, 6, n_bridges=5, seed=3)
        assert pair.partition.cut_size == 5

    def test_too_many_bridges_rejected(self):
        with pytest.raises(GraphError, match="distinct bridges"):
            two_cliques(2, 2, n_bridges=5)

    def test_two_expanders_regular_inside(self):
        pair = two_expanders(12, 12, degree=4, n_bridges=1, seed=1)
        degrees = pair.graph.degrees
        # All vertices have degree 4 except the two bridge endpoints (5).
        assert sorted(np.unique(degrees).tolist()) == [4, 5]
        assert pair.graph.is_connected()

    def test_two_grids(self):
        pair = two_grids(3, 4, n_bridges=2, seed=5)
        assert pair.graph.n_vertices == 24
        assert pair.partition.cut_size == 2

    def test_two_erdos_renyi_connected_sides(self):
        pair = two_erdos_renyi(16, 20, n_bridges=1, seed=9)
        ok1, ok2 = pair.partition.sides_connected()
        assert ok1 and ok2

    def test_bridged_pair_dispatch(self):
        assert bridged_pair("clique", 5).graph.n_vertices == 10
        assert bridged_pair("expander", 12, degree=4, seed=0).graph.n_vertices == 24
        assert bridged_pair("er", 12, seed=0).graph.n_vertices == 24
        grid = bridged_pair("grid", 12)
        assert grid.graph.n_vertices == 24

    def test_bridged_pair_unknown_family(self):
        with pytest.raises(GraphError, match="unknown family"):
            bridged_pair("mystery", 8)

"""Statistical validation of the Poisson edge-clock model.

The paper's probabilistic statements all live on this process, so its
distributional properties get explicit goodness-of-fit tests (fixed seeds,
conservative significance levels — these must not flake).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats

from repro.clocks.poisson import PoissonEdgeClocks


class TestDistributionalCorrectness:
    def test_gaps_are_exponential_ks(self):
        m = 7
        clocks = PoissonEdgeClocks(m, seed=101)
        times, _ = clocks.next_batch(20_000)
        gaps = np.diff(np.concatenate([[0.0], times]))
        statistic, p_value = scipy.stats.kstest(
            gaps, "expon", args=(0, 1.0 / m)
        )
        assert p_value > 1e-3

    def test_per_edge_counts_are_poisson(self):
        """Counts of one edge over fixed windows ~ Poisson(window)."""
        m = 5
        window = 4.0
        clocks = PoissonEdgeClocks(m, seed=102)
        # Generate enough events to cover many windows.
        times, edges = clocks.next_batch(120_000)
        horizon = float(times[-1])
        n_windows = int(horizon // window)
        counts = np.zeros(n_windows, dtype=np.int64)
        mask = edges == 0
        window_index = (times[mask] // window).astype(np.int64)
        window_index = window_index[window_index < n_windows]
        np.add.at(counts, window_index, 1)
        # Mean and variance of Poisson(window) both equal `window`.
        assert counts.mean() == pytest.approx(window, rel=0.1)
        assert counts.var() == pytest.approx(window, rel=0.25)
        # Chi-square against the Poisson pmf over a binned support.
        lam = window
        support = np.arange(0, 13)
        expected_probabilities = scipy.stats.poisson.pmf(support, lam)
        tail = 1.0 - expected_probabilities.sum()
        observed = np.array(
            [(counts == k).sum() for k in support] + [(counts > 12).sum()],
            dtype=float,
        )
        expected = np.concatenate([expected_probabilities, [tail]]) * len(counts)
        keep = expected > 4
        statistic = float(((observed[keep] - expected[keep]) ** 2 /
                           expected[keep]).sum())
        dof = int(keep.sum()) - 1
        p_value = 1.0 - scipy.stats.chi2.cdf(statistic, dof)
        assert p_value > 1e-3

    def test_edge_choice_is_uniform_chi_square(self):
        m = 12
        clocks = PoissonEdgeClocks(m, seed=103)
        _, edges = clocks.next_batch(60_000)
        observed = np.bincount(edges, minlength=m).astype(float)
        expected = np.full(m, 60_000 / m)
        statistic = float(((observed - expected) ** 2 / expected).sum())
        p_value = 1.0 - scipy.stats.chi2.cdf(statistic, m - 1)
        assert p_value > 1e-3

    def test_superposition_matches_independent_clocks(self):
        """Mean per-edge rate equals 1 under the superposed construction."""
        m = 9
        clocks = PoissonEdgeClocks(m, seed=104)
        times, edges = clocks.next_batch(90_000)
        horizon = float(times[-1])
        rates = np.bincount(edges, minlength=m) / horizon
        assert np.allclose(rates, 1.0, atol=0.05)

    def test_thinning_gives_scaled_rates(self):
        """LossyClocks with drop p behaves like rate (1 - p) clocks."""
        from repro.clocks.unreliable import LossyClocks

        m, p = 6, 0.4
        lossy = LossyClocks(PoissonEdgeClocks(m, seed=105), p, seed=106)
        kept_times = []
        for _ in range(12):
            times, _ = lossy.next_batch(10_000)
            kept_times.append(times)
        all_times = np.concatenate(kept_times)
        horizon = float(all_times[-1])
        measured_rate = len(all_times) / horizon
        assert measured_rate == pytest.approx(m * (1 - p), rel=0.05)

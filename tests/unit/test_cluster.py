"""Unit tests for the cluster backend's building blocks.

The end-to-end fault-injection scenarios (kill/drop/duplicate/straggler
against whole sweeps) live in ``tests/integration/test_cluster_faults.py``;
this module pins the pieces those scenarios are built from: wire framing,
fault-plan parsing, backend registration/validation, exactly-once result
assembly, shared-state shipping economy, and heartbeat-based failure
detection against a scripted in-test worker.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.algorithms.vanilla import VanillaGossip
from repro.engine import wire
from repro.engine.backends import (
    SerialBackend,
    registered_backends,
    resolve_backend,
    shutdown_shared_backends,
)
from repro.engine.cluster import ClusterBackend, FaultPlan
from repro.engine.results import results_identical
from repro.engine.runner import MonteCarloRunner
from repro.errors import ClusterError, SimulationError
from repro.graphs.topologies import complete_graph


@pytest.fixture(autouse=True)
def _release_shared_pools():
    yield
    shutdown_shared_backends()


def make_runner(backend=None, seed: int = 3) -> MonteCarloRunner:
    graph = complete_graph(6)
    x0 = [float(i) for i in range(6)]
    return MonteCarloRunner(graph, VanillaGossip, x0, seed=seed, backend=backend)


class UnsimulatableGossip(VanillaGossip):
    """Raises on setup — a deterministic failure no reassignment fixes.

    Module-level so the spec pickles to cluster workers.
    """

    def setup(self, graph, values, rng):
        raise ValueError("scripted failure")


class TestWireFraming:
    def test_frame_round_trips(self):
        decoder = wire.FrameDecoder()
        frames = decoder.feed(wire.encode_frame("task", {"task_id": 7}))
        assert frames == [("task", {"task_id": 7})]
        assert decoder.pending_bytes == 0

    def test_fragmented_and_coalesced_streams(self):
        """One frame over many feeds, and many frames in one feed."""
        payloads = [{"i": i, "blob": bytes(50 * i)} for i in range(5)]
        stream = b"".join(
            wire.encode_frame("result", payload) for payload in payloads
        )
        decoder = wire.FrameDecoder()
        collected = []
        step = 7
        for offset in range(0, len(stream), step):
            collected.extend(decoder.feed(stream[offset:offset + step]))
        assert [payload for _, payload in collected] == payloads
        # And the whole stream in one gulp.
        assert len(wire.FrameDecoder().feed(stream)) == len(payloads)

    def test_corrupt_length_prefix_rejected(self):
        decoder = wire.FrameDecoder()
        with pytest.raises(ClusterError, match="corrupt"):
            decoder.feed(b"\xff\xff\xff\xff12345678")

    def test_connection_queues_coalesced_frames(self):
        """The worker's blocking reader must hand back pipelined frames
        one at a time, in order."""
        left, right = socket.socketpair()
        try:
            conn = wire.Connection(right)
            left.sendall(
                wire.encode_frame("state", {"digest": "d"})
                + wire.encode_frame("task", {"task_id": 1})
            )
            assert conn.recv() == ("state", {"digest": "d"})
            assert conn.recv() == ("task", {"task_id": 1})
            left.close()
            assert conn.recv() is None  # clean EOF
        finally:
            right.close()

    def test_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        try:
            conn = wire.Connection(right)
            left.sendall(wire.encode_frame("task", {"task_id": 1})[:-3])
            left.close()
            with pytest.raises(ClusterError, match="mid-frame"):
                conn.recv()
        finally:
            right.close()


class TestFaultPlan:
    def test_parse_round_trips(self):
        plan = FaultPlan.parse("die-after:3,slow:0.5")
        assert plan == FaultPlan(die_after=3, slow=0.5)
        assert FaultPlan.parse(plan.to_text()) == plan
        assert FaultPlan.parse(None) == FaultPlan()
        assert FaultPlan().to_text() is None
        full = FaultPlan(drop_after=2, duplicate_results=True)
        assert FaultPlan.parse(full.to_text()) == full

    def test_invalid_specs_rejected(self):
        with pytest.raises(ClusterError, match="unknown fault token"):
            FaultPlan.parse("explode")
        with pytest.raises(ClusterError, match="malformed"):
            FaultPlan.parse("die-after:soon")
        with pytest.raises(ClusterError, match="die_after"):
            FaultPlan(die_after=0)
        with pytest.raises(ClusterError, match="slow"):
            FaultPlan(slow=-1.0)


class TestRegistryAndValidation:
    def test_cluster_is_registered(self):
        assert {"serial", "process", "cluster"} <= set(registered_backends())
        backend = resolve_backend("cluster", n_workers=3)
        try:
            assert isinstance(backend, ClusterBackend)
            assert backend.n_workers == 3
        finally:
            backend.shutdown()

    def test_unknown_name_lists_registered(self):
        with pytest.raises(SimulationError, match="cluster"):
            resolve_backend("threads")

    def test_constructor_validation(self):
        with pytest.raises(ClusterError):
            ClusterBackend(0)
        with pytest.raises(ClusterError):
            ClusterBackend(2, window=0)
        with pytest.raises(ClusterError):
            ClusterBackend(2, heartbeat_timeout=0.0)

    def test_empty_batch_short_circuits(self):
        backend = ClusterBackend(2)
        try:
            assert backend.execute([]) == []
            assert backend.execute_shared([], {}) == []
            # No batch ran, so no fleet was ever spawned.
            assert backend.stats["batches"] == 0
        finally:
            backend.shutdown()

    def test_unpicklable_spec_fails_fast_without_spawning(self):
        backend = ClusterBackend(2)
        try:
            runner = make_runner(backend=backend)
            runner.algorithm_factory = lambda: VanillaGossip()
            with pytest.raises(SimulationError, match="AlgorithmFactory"):
                runner.run(2, max_events=10)
            assert not backend._workers and not backend._pending_procs
        finally:
            backend.shutdown()

    def test_recorder_rejected(self):
        from repro.engine.recorder import TraceRecorder

        backend = ClusterBackend(2)
        try:
            with pytest.raises(SimulationError, match="recorder"):
                make_runner(backend=backend).run(
                    2, max_events=50, recorder=TraceRecorder(10)
                )
        finally:
            backend.shutdown()


@pytest.mark.slow
class TestClusterExecution:
    def test_execute_after_shutdown_rebuilds_fleet(self):
        serial = make_runner().run(3, max_events=200)
        backend = ClusterBackend(2)
        try:
            first = make_runner(backend=backend).run(3, max_events=200)
            backend.shutdown()
            backend.shutdown()  # idempotent
            second = make_runner(backend=backend).run(3, max_events=200)
            for a, b, c in zip(serial, first, second):
                assert results_identical(a, b)
                assert results_identical(a, c)
        finally:
            backend.shutdown()

    def test_state_ships_at_most_once_per_worker_per_digest(self):
        """The cluster analogue of the pool's shipping-economy pin:
        repeated batches against the same mapping content install state
        exactly once per worker."""
        backend = ClusterBackend(2)
        try:
            runner = make_runner(backend=backend)
            slim = runner.build_specs(6, shared_key="k", max_events=200)
            reference = SerialBackend().execute_shared(
                slim, {"k": runner.shared_state()}
            )
            for _ in range(3):
                # A fresh, equal-but-distinct mapping every batch: the
                # content digest must recognize it and not re-ship.
                shipped = backend.execute_shared(
                    slim, {"k": runner.shared_state()}
                )
                for a, b in zip(reference, shipped):
                    assert results_identical(a, b)
            assert backend.stats["state_installs"] == 2  # one per worker
            assert backend.stats["worker_failures"] == 0
        finally:
            backend.shutdown()

    def test_deterministic_replicate_error_propagates(self):
        """A replicate that raises is deterministic: the batch must fail
        with guidance, not retry forever across workers."""
        backend = ClusterBackend(2)
        try:
            runner = MonteCarloRunner(
                complete_graph(6),
                UnsimulatableGossip,
                [float(i) for i in range(6)],
                seed=0,
                backend=backend,
                max_batch_retries=0,
            )
            with pytest.raises(ClusterError, match="scripted failure") as info:
                runner.run(4, max_events=50)
            assert not info.value.retryable
        finally:
            backend.shutdown()

    def test_silent_worker_detected_by_heartbeat_timeout(self):
        """A connected worker that accepts tasks but never responds (and
        never heartbeats) must be declared dead and its in-flight specs
        reassigned to the healthy worker."""
        backend = ClusterBackend(1, heartbeat_timeout=1.0)
        host, port = backend.address
        hello_sent = threading.Event()

        def silent_worker():
            sock = socket.create_connection((host, port), timeout=10)
            try:
                sock.sendall(
                    wire.encode_frame(
                        "hello", {"version": wire.WIRE_VERSION, "pid": -1}
                    )
                )
                hello_sent.set()
                # Swallow whatever arrives, answer nothing.
                sock.settimeout(20.0)
                while True:
                    if not sock.recv(65536):
                        return
            except OSError:
                return
            finally:
                sock.close()

        thread = threading.Thread(target=silent_worker, daemon=True)
        thread.start()
        try:
            serial = make_runner().run(6, max_events=200)
            results = make_runner(backend=backend).run(6, max_events=200)
            for a, b in zip(serial, results):
                assert results_identical(a, b)
            assert hello_sent.wait(timeout=10)
            assert backend.stats["worker_failures"] >= 1
            assert backend.stats["reassigned"] >= 1
        finally:
            backend.shutdown()
            thread.join(timeout=5)

    def test_spawn_workers_false_accepts_attached_worker(self):
        """An externally attached worker (the `repro worker` path, run
        in-process here) serves a coordinator that spawns nothing."""
        from repro.engine.cluster import run_worker

        backend = ClusterBackend(1, spawn_workers=False)
        host, port = backend.address
        thread = threading.Thread(
            target=run_worker,
            args=(host, port),
            kwargs={"heartbeat_interval": 0.2},
            daemon=True,
        )
        thread.start()
        try:
            serial = make_runner().run(4, max_events=200)
            attached = make_runner(backend=backend).run(4, max_events=200)
            for a, b in zip(serial, attached):
                assert results_identical(a, b)
            assert backend.stats["worker_failures"] == 0
        finally:
            backend.shutdown()
            thread.join(timeout=5)

    def test_spawn_workers_false_times_out_without_attachments(self):
        backend = ClusterBackend(
            1, spawn_workers=False, connect_timeout=0.5
        )
        try:
            with pytest.raises(ClusterError, match="no worker became ready"):
                make_runner(backend=backend).run(2, max_events=10)
        finally:
            backend.shutdown()


class TestWorkerCLI:
    """The `repro ... worker` subcommand's argument handling (the happy
    path is exercised by every spawned-worker test above)."""

    def test_malformed_connect_rejected(self, capsys):
        from repro.experiments.cli import main

        for target in ("nonsense", "localhost:notaport", "localhost:99999"):
            assert main(["worker", "--connect", target]) == 2
            assert "HOST:PORT" in capsys.readouterr().err

    def test_bad_heartbeat_interval_rejected(self, capsys):
        from repro.experiments.cli import main

        code = main(
            ["worker", "--connect", "127.0.0.1:1", "--heartbeat-interval", "0"]
        )
        assert code == 2
        assert "heartbeat-interval" in capsys.readouterr().err

    def test_bad_fault_spec_rejected(self, capsys):
        from repro.experiments.cli import main

        code = main(["worker", "--connect", "127.0.0.1:1", "--fault", "explode"])
        assert code == 2
        assert "fault token" in capsys.readouterr().err

    def test_unreachable_coordinator_reports_cleanly(self, capsys):
        from repro.experiments.cli import main

        # Port 1 on localhost refuses immediately: clean exit, no traceback.
        assert main(["worker", "--connect", "127.0.0.1:1"]) == 2
        assert "cannot reach coordinator" in capsys.readouterr().err

"""Unit tests for the cluster backend's building blocks.

The end-to-end fault-injection scenarios (kill/drop/duplicate/straggler
against whole sweeps) live in ``tests/integration/test_cluster_faults.py``;
this module pins the pieces those scenarios are built from: wire framing,
fault-plan parsing, backend registration/validation, exactly-once result
assembly, shared-state shipping economy, and heartbeat-based failure
detection against a scripted in-test worker.
"""

from __future__ import annotations

import os
import socket
import threading
import time

import pytest

from repro.algorithms.vanilla import VanillaGossip
from repro.engine import wire
from repro.engine.backends import (
    SerialBackend,
    registered_backends,
    resolve_backend,
    shutdown_shared_backends,
)
from repro.engine.cluster import (
    ClusterBackend,
    FaultPlan,
    run_worker,
    worker_handshake,
)
from repro.engine.results import results_identical
from repro.engine.runner import MonteCarloRunner
from repro.errors import ClusterAuthError, ClusterError, SimulationError
from repro.graphs.topologies import complete_graph


@pytest.fixture(autouse=True)
def _release_shared_pools():
    yield
    shutdown_shared_backends()


def make_runner(backend=None, seed: int = 3) -> MonteCarloRunner:
    graph = complete_graph(6)
    x0 = [float(i) for i in range(6)]
    return MonteCarloRunner(graph, VanillaGossip, x0, seed=seed, backend=backend)


class UnsimulatableGossip(VanillaGossip):
    """Raises on setup — a deterministic failure no reassignment fixes.

    Module-level so the spec pickles to cluster workers.
    """

    def setup(self, graph, values, rng):
        raise ValueError("scripted failure")


class TestWireFraming:
    def test_frame_round_trips(self):
        decoder = wire.FrameDecoder()
        frames = decoder.feed(wire.encode_frame("task", {"task_id": 7}))
        assert frames == [("task", {"task_id": 7})]
        assert decoder.pending_bytes == 0

    def test_fragmented_and_coalesced_streams(self):
        """One frame over many feeds, and many frames in one feed."""
        payloads = [{"i": i, "blob": bytes(50 * i)} for i in range(5)]
        stream = b"".join(
            wire.encode_frame("result", payload) for payload in payloads
        )
        decoder = wire.FrameDecoder()
        collected = []
        step = 7
        for offset in range(0, len(stream), step):
            collected.extend(decoder.feed(stream[offset:offset + step]))
        assert [payload for _, payload in collected] == payloads
        # And the whole stream in one gulp.
        assert len(wire.FrameDecoder().feed(stream)) == len(payloads)

    def test_corrupt_length_prefix_rejected(self):
        decoder = wire.FrameDecoder()
        with pytest.raises(ClusterError, match="corrupt"):
            decoder.feed(b"\xff\xff\xff\xff12345678")

    def test_zero_length_frame_rejected(self):
        decoder = wire.FrameDecoder()
        with pytest.raises(ClusterError, match="zero-length"):
            decoder.feed(b"\x00\x00\x00\x00")

    def test_frame_size_cap_is_configurable(self):
        frame = wire.encode_frame("result", {"blob": bytes(4096)})
        assert wire.FrameDecoder().feed(frame)  # default cap: fine
        small = wire.FrameDecoder(max_frame_bytes=256)
        with pytest.raises(ClusterError, match="limit"):
            small.feed(frame)
        # The sender enforces the same cap before any bytes hit the wire.
        with pytest.raises(ClusterError, match="wire limit"):
            wire.encode_frame("result", {"blob": bytes(4096)},
                              max_frame_bytes=256)

    def test_json_dialect_round_trips_while_pickle_locked(self):
        decoder = wire.FrameDecoder(allow_pickle=False)
        frame = wire.encode_json_frame("auth-challenge", {"nonce": "abc"})
        assert decoder.feed(frame) == [("auth-challenge", {"nonce": "abc"})]

    def test_malformed_json_frame_rejected(self):
        def json_frame(body: bytes) -> bytes:
            return (len(body) + 1).to_bytes(4, "big") + b"J" + body

        with pytest.raises(ClusterError, match="malformed handshake"):
            wire.FrameDecoder(allow_pickle=False).feed(json_frame(b"not json"))
        # Valid JSON but the wrong shape is rejected just the same.
        with pytest.raises(ClusterError, match=r"\[kind, payload\]"):
            wire.FrameDecoder(allow_pickle=False).feed(json_frame(b'{"a":1}'))

    def test_unknown_tag_rejected(self):
        decoder = wire.FrameDecoder()
        with pytest.raises(ClusterError, match="unknown frame tag"):
            decoder.feed(b"\x00\x00\x00\x02Zb")

    def test_pickle_frame_refused_before_auth_without_unpickling(self, tmp_path):
        """The load-bearing security property: a pickle frame from an
        unauthenticated peer is rejected *before* ``pickle.loads`` ever
        sees it — proven by an armed payload whose side effect must not
        fire."""
        marker = tmp_path / "pwned"

        class Evil:
            def __reduce__(self):
                return (os.mkdir, (str(marker),))

        frame = wire.encode_frame("task", Evil())
        locked = wire.FrameDecoder(allow_pickle=False)
        with pytest.raises(ClusterError, match="unauthenticated"):
            locked.feed(frame)
        assert not marker.exists()
        # Prove the payload really was armed: an unlocked decoder (the
        # post-handshake state) does detonate it.
        wire.FrameDecoder().feed(frame)
        assert marker.exists()

    def test_connection_queues_coalesced_frames(self):
        """The worker's blocking reader must hand back pipelined frames
        one at a time, in order."""
        left, right = socket.socketpair()
        try:
            conn = wire.Connection(right)
            left.sendall(
                wire.encode_frame("state", {"digest": "d"})
                + wire.encode_frame("task", {"task_id": 1})
            )
            assert conn.recv() == ("state", {"digest": "d"})
            assert conn.recv() == ("task", {"task_id": 1})
            left.close()
            assert conn.recv() is None  # clean EOF
        finally:
            right.close()

    def test_mid_frame_eof_raises(self):
        left, right = socket.socketpair()
        try:
            conn = wire.Connection(right)
            left.sendall(wire.encode_frame("task", {"task_id": 1})[:-3])
            left.close()
            with pytest.raises(ClusterError, match="mid-frame"):
                conn.recv()
        finally:
            right.close()


class TestAuthHelpers:
    def test_mac_binds_token_role_and_transcript(self):
        mac = wire.compute_mac("secret", "worker", "c-nonce", "w-nonce", "w1")
        assert wire.verify_mac("secret", "worker", ("c-nonce", "w-nonce", "w1"), mac)
        # Any deviation — token, role, or transcript — fails the check.
        assert not wire.verify_mac("other", "worker", ("c-nonce", "w-nonce", "w1"), mac)
        assert not wire.verify_mac("secret", "coordinator", ("c-nonce", "w-nonce", "w1"), mac)
        assert not wire.verify_mac("secret", "worker", ("c-nonce", "w-nonce", "w2"), mac)
        # A peer sending a non-string MAC must not crash the check.
        assert not wire.verify_mac("secret", "worker", ("a",), None)
        assert not wire.verify_mac("secret", "worker", ("a",), 12345)

    def test_resolve_auth_token_precedence(self, monkeypatch):
        monkeypatch.delenv(wire.AUTH_TOKEN_ENV_VAR, raising=False)
        assert wire.resolve_auth_token() == ""
        monkeypatch.setenv(wire.AUTH_TOKEN_ENV_VAR, "from-env")
        assert wire.resolve_auth_token() == "from-env"
        assert wire.resolve_auth_token("explicit") == "explicit"
        assert wire.resolve_auth_token("") == ""  # explicit empty wins too

    def test_nonces_are_fresh(self):
        assert wire.new_nonce() != wire.new_nonce()

    def test_handshake_over_socketpair(self):
        """Both sides of the HMAC exchange, against a scripted
        coordinator: the worker ends up unlocked for pickle frames."""
        left, right = socket.socketpair()
        worker_conn = wire.Connection(right, allow_pickle=False)
        coord = wire.Connection(left)
        token = "s3cret"
        challenge = wire.new_nonce()

        def scripted_coordinator():
            coord.send_json(
                wire.MSG_AUTH_CHALLENGE,
                {"versions": list(wire.SUPPORTED_WIRE_VERSIONS),
                 "nonce": challenge},
            )
            kind, payload = coord.recv()
            assert kind == wire.MSG_AUTH_RESPONSE
            assert wire.verify_mac(
                token,
                "worker",
                (challenge, payload["nonce"], payload["worker_id"]),
                payload["mac"],
            )
            coord.send_json(
                wire.MSG_AUTH_OK,
                {"version": wire.WIRE_VERSION,
                 "mac": wire.compute_mac(
                     token, "coordinator", payload["nonce"], challenge)},
            )

        thread = threading.Thread(target=scripted_coordinator, daemon=True)
        thread.start()
        try:
            worker_handshake(worker_conn, token, "w-1", timeout=10.0)
            assert worker_conn.allow_pickle
        finally:
            thread.join(timeout=5)
            coord.close()
            worker_conn.close()

    def test_worker_rejects_spoofed_coordinator(self):
        """Mutual auth: a coordinator that cannot MAC the transcript is
        refused before the worker would deserialize anything from it."""
        left, right = socket.socketpair()
        worker_conn = wire.Connection(right, allow_pickle=False)
        coord = wire.Connection(left)

        def spoofer():
            coord.send_json(
                wire.MSG_AUTH_CHALLENGE,
                {"versions": list(wire.SUPPORTED_WIRE_VERSIONS),
                 "nonce": wire.new_nonce()},
            )
            coord.recv()
            coord.send_json(
                wire.MSG_AUTH_OK,
                {"version": wire.WIRE_VERSION, "mac": "forged"},
            )

        thread = threading.Thread(target=spoofer, daemon=True)
        thread.start()
        try:
            with pytest.raises(ClusterAuthError, match="mutual"):
                worker_handshake(worker_conn, "s3cret", "w-1", timeout=10.0)
            assert not worker_conn.allow_pickle
        finally:
            thread.join(timeout=5)
            coord.close()
            worker_conn.close()


class TestFaultPlan:
    def test_parse_round_trips(self):
        plan = FaultPlan.parse("die-after:3,slow:0.5")
        assert plan == FaultPlan(die_after=3, slow=0.5)
        assert FaultPlan.parse(plan.to_text()) == plan
        assert FaultPlan.parse(None) == FaultPlan()
        assert FaultPlan().to_text() is None
        full = FaultPlan(drop_after=2, duplicate_results=True)
        assert FaultPlan.parse(full.to_text()) == full
        churn = FaultPlan(disconnect_after=2, drain_after=5, slow_start=1.5)
        assert FaultPlan.parse(churn.to_text()) == churn
        assert FaultPlan.parse("disconnect-after:1") == FaultPlan(
            disconnect_after=1
        )

    def test_invalid_specs_rejected(self):
        with pytest.raises(ClusterError, match="unknown fault token"):
            FaultPlan.parse("explode")
        with pytest.raises(ClusterError, match="malformed"):
            FaultPlan.parse("die-after:soon")
        with pytest.raises(ClusterError, match="malformed"):
            FaultPlan.parse("slow-start:never")
        with pytest.raises(ClusterError, match="die_after"):
            FaultPlan(die_after=0)
        with pytest.raises(ClusterError, match="slow"):
            FaultPlan(slow=-1.0)
        with pytest.raises(ClusterError, match="drain_after"):
            FaultPlan(drain_after=0)
        with pytest.raises(ClusterError, match="disconnect_after"):
            FaultPlan(disconnect_after=-1)
        with pytest.raises(ClusterError, match="slow_start"):
            FaultPlan(slow_start=-0.1)


class TestRegistryAndValidation:
    def test_cluster_is_registered(self):
        assert {"serial", "process", "cluster"} <= set(registered_backends())
        backend = resolve_backend("cluster", n_workers=3)
        try:
            assert isinstance(backend, ClusterBackend)
            assert backend.n_workers == 3
        finally:
            backend.shutdown()

    def test_unknown_name_lists_registered(self):
        with pytest.raises(SimulationError, match="cluster"):
            resolve_backend("threads")

    def test_constructor_validation(self):
        with pytest.raises(ClusterError):
            ClusterBackend(0)
        with pytest.raises(ClusterError):
            ClusterBackend(2, window=0)
        with pytest.raises(ClusterError):
            ClusterBackend(2, heartbeat_timeout=0.0)
        with pytest.raises(ClusterError):
            ClusterBackend(2, handshake_timeout=0.0)
        with pytest.raises(ClusterError):
            ClusterBackend(2, reconnect_grace=-1.0)
        with pytest.raises(ClusterError):
            ClusterBackend(2, speculation_delay=-1.0)
        with pytest.raises(ClusterError, match="max_frame_bytes"):
            ClusterBackend(2, max_frame_bytes=1024)
        with pytest.raises(ClusterError):
            ClusterBackend(2, worker_reconnects=-1)
        with pytest.raises(ClusterError):
            ClusterBackend(2, worker_reconnect_backoff=0.0)

    def test_empty_batch_short_circuits(self):
        backend = ClusterBackend(2)
        try:
            assert backend.execute([]) == []
            assert backend.execute_shared([], {}) == []
            # No batch ran, so no fleet was ever spawned.
            assert backend.stats["batches"] == 0
        finally:
            backend.shutdown()

    def test_unpicklable_spec_fails_fast_without_spawning(self):
        backend = ClusterBackend(2)
        try:
            runner = make_runner(backend=backend)
            runner.algorithm_factory = lambda: VanillaGossip()
            with pytest.raises(SimulationError, match="AlgorithmFactory"):
                runner.run(2, max_events=10)
            assert not backend._workers and not backend._pending_procs
        finally:
            backend.shutdown()

    def test_recorder_rejected(self):
        from repro.engine.recorder import TraceRecorder

        backend = ClusterBackend(2)
        try:
            with pytest.raises(SimulationError, match="recorder"):
                make_runner(backend=backend).run(
                    2, max_events=50, recorder=TraceRecorder(10)
                )
        finally:
            backend.shutdown()


@pytest.mark.slow
class TestClusterExecution:
    def test_execute_after_shutdown_rebuilds_fleet(self):
        serial = make_runner().run(3, max_events=200)
        backend = ClusterBackend(2)
        try:
            first = make_runner(backend=backend).run(3, max_events=200)
            backend.shutdown()
            backend.shutdown()  # idempotent
            second = make_runner(backend=backend).run(3, max_events=200)
            for a, b, c in zip(serial, first, second):
                assert results_identical(a, b)
                assert results_identical(a, c)
        finally:
            backend.shutdown()

    def test_state_ships_at_most_once_per_worker_per_digest(self):
        """The cluster analogue of the pool's shipping-economy pin:
        repeated batches against the same mapping content install state
        exactly once per worker."""
        backend = ClusterBackend(2)
        try:
            runner = make_runner(backend=backend)
            slim = runner.build_specs(6, shared_key="k", max_events=200)
            reference = SerialBackend().execute_shared(
                slim, {"k": runner.shared_state()}
            )
            for _ in range(3):
                # A fresh, equal-but-distinct mapping every batch: the
                # content digest must recognize it and not re-ship.
                shipped = backend.execute_shared(
                    slim, {"k": runner.shared_state()}
                )
                for a, b in zip(reference, shipped):
                    assert results_identical(a, b)
            assert backend.stats["state_installs"] == 2  # one per worker
            assert backend.stats["worker_failures"] == 0
        finally:
            backend.shutdown()

    def test_deterministic_replicate_error_propagates(self):
        """A replicate that raises is deterministic: the batch must fail
        with guidance, not retry forever across workers."""
        backend = ClusterBackend(2)
        try:
            runner = MonteCarloRunner(
                complete_graph(6),
                UnsimulatableGossip,
                [float(i) for i in range(6)],
                seed=0,
                backend=backend,
                max_batch_retries=0,
            )
            with pytest.raises(ClusterError, match="scripted failure") as info:
                runner.run(4, max_events=50)
            assert not info.value.retryable
        finally:
            backend.shutdown()

    def test_silent_worker_detected_by_heartbeat_timeout(self):
        """A worker that authenticates and accepts tasks but never
        responds (and never heartbeats) must be declared dead and its
        in-flight specs reassigned to the healthy worker."""
        backend = ClusterBackend(1, heartbeat_timeout=1.0)
        host, port = backend.address
        authed = threading.Event()

        def silent_worker():
            sock = socket.create_connection((host, port), timeout=10)
            conn = wire.Connection(sock, allow_pickle=False)
            try:
                worker_handshake(conn, "", "silent-worker", timeout=20.0)
                authed.set()
                # Swallow whatever arrives, answer nothing.
                while True:
                    frame = conn.recv(timeout=20.0)
                    if frame is None or frame is wire.TIMEOUT:
                        return
            except (ClusterError, OSError):
                return
            finally:
                conn.close()

        thread = threading.Thread(target=silent_worker, daemon=True)
        thread.start()
        try:
            serial = make_runner().run(6, max_events=200)
            results = make_runner(backend=backend).run(6, max_events=200)
            for a, b in zip(serial, results):
                assert results_identical(a, b)
            assert authed.wait(timeout=10)
            assert backend.stats["worker_failures"] >= 1
            assert backend.stats["reassigned"] >= 1
        finally:
            backend.shutdown()
            thread.join(timeout=5)

    def test_unauthenticated_peer_cannot_make_coordinator_unpickle(
        self, tmp_path
    ):
        """A stranger reaching the coordinator port sends an armed pickle
        frame: the coordinator must drop the connection without the
        payload ever reaching ``pickle.loads``, and the batch must
        complete untouched on the real worker."""
        marker = tmp_path / "pwned"

        class Evil:
            def __reduce__(self):
                return (os.mkdir, (str(marker),))

        backend = ClusterBackend(1)
        host, port = backend.address
        rejected = threading.Event()

        def rogue():
            sock = socket.create_connection((host, port), timeout=10)
            try:
                sock.sendall(wire.encode_frame("task", Evil()))
                sock.settimeout(20.0)
                try:
                    while sock.recv(65536):
                        pass
                except OSError:
                    pass
                rejected.set()
            finally:
                sock.close()

        thread = threading.Thread(target=rogue, daemon=True)
        thread.start()
        try:
            serial = make_runner().run(3, max_events=200)
            results = make_runner(backend=backend).run(3, max_events=200)
            for a, b in zip(serial, results):
                assert results_identical(a, b)
            assert rejected.wait(timeout=15)
            assert not marker.exists()
            assert backend.stats["auth_rejected"] >= 1
            assert backend.stats["worker_failures"] == 0
        finally:
            backend.shutdown()
            thread.join(timeout=5)

    def test_wrong_token_worker_rejected(self):
        """A worker holding the wrong token exits 3 (rejected, no retry)
        while the correctly keyed worker completes the batch alone."""
        backend = ClusterBackend(1, spawn_workers=False, auth_token="s3cret")
        host, port = backend.address
        codes: "dict[str, int]" = {}

        def attach(name: str, token: str) -> None:
            codes[name] = run_worker(
                host,
                port,
                heartbeat_interval=0.2,
                auth_token=token,
                max_reconnects=0,
            )

        intruder = threading.Thread(
            target=attach, args=("intruder", "wrong-token"), daemon=True
        )
        honest = threading.Thread(
            target=attach, args=("honest", "s3cret"), daemon=True
        )
        intruder.start()
        honest.start()
        try:
            serial = make_runner().run(4, max_events=200)
            results = make_runner(backend=backend).run(4, max_events=200)
            for a, b in zip(serial, results):
                assert results_identical(a, b)
            intruder.join(timeout=15)
            assert codes.get("intruder") == 3
            assert backend.stats["auth_rejected"] >= 1
            assert backend.stats["worker_failures"] == 0
        finally:
            backend.shutdown()
            honest.join(timeout=10)
        assert codes.get("honest") == 0

    def test_graceful_drain_frees_a_replacement_spawn(self):
        """drain-after: the worker finishes its in-flight replicate,
        says goodbye and detaches — no failure, no reassignment cost,
        and its replacement spawn is free (not a respawn)."""
        serial = make_runner().run(10, max_events=200)
        backend = ClusterBackend(2, worker_faults=["drain-after:2", None])
        try:
            results = make_runner(backend=backend).run(10, max_events=200)
            for a, b in zip(serial, results):
                assert results_identical(a, b)
            assert backend.stats["drains"] >= 1
            assert backend.stats["worker_failures"] == 0
        finally:
            backend.shutdown()

    def test_disconnected_worker_reconnects_with_identity(self):
        """disconnect-after: a WAN flap.  The coordinator stashes the
        spawned process under its worker id for the grace window; the
        worker reconnects with backoff and resumes its identity."""
        serial = make_runner().run(12, max_events=200)
        backend = ClusterBackend(
            2,
            worker_faults=["disconnect-after:2", "slow:0.1"],
            worker_reconnect_backoff=0.05,
        )
        try:
            results = make_runner(backend=backend).run(12, max_events=200)
            for a, b in zip(serial, results):
                assert results_identical(a, b)
            assert backend.stats["reconnects"] >= 1
            assert backend.stats["worker_failures"] >= 1
        finally:
            backend.shutdown()

    def test_straggler_speculation_is_double_count_free(self):
        """Near end-of-batch, an idle worker re-executes the slow
        worker's oldest in-flight task; dedup keeps results exactly-once
        so the artifact is unchanged."""
        serial = make_runner().run(6, max_events=200)
        backend = ClusterBackend(
            2,
            worker_faults=["slow:1.5", None],
            speculation_delay=0.3,
            worker_reconnects=0,
        )
        try:
            results = make_runner(backend=backend).run(6, max_events=200)
            for a, b in zip(serial, results):
                assert results_identical(a, b)
            assert backend.stats["speculated"] >= 1
            assert backend.stats["worker_failures"] == 0
        finally:
            backend.shutdown()

    def test_spawn_workers_false_accepts_attached_worker(self):
        """An externally attached worker (the `repro worker` path, run
        in-process here) serves a coordinator that spawns nothing."""
        from repro.engine.cluster import run_worker

        backend = ClusterBackend(1, spawn_workers=False)
        host, port = backend.address
        thread = threading.Thread(
            target=run_worker,
            args=(host, port),
            kwargs={"heartbeat_interval": 0.2},
            daemon=True,
        )
        thread.start()
        try:
            serial = make_runner().run(4, max_events=200)
            attached = make_runner(backend=backend).run(4, max_events=200)
            for a, b in zip(serial, attached):
                assert results_identical(a, b)
            assert backend.stats["worker_failures"] == 0
        finally:
            backend.shutdown()
            thread.join(timeout=5)

    def test_spawn_workers_false_times_out_without_attachments(self):
        backend = ClusterBackend(
            1, spawn_workers=False, connect_timeout=0.5
        )
        try:
            with pytest.raises(ClusterError, match="no worker became ready"):
                make_runner(backend=backend).run(2, max_events=10)
        finally:
            backend.shutdown()


class TestWorkerCLI:
    """The `repro ... worker` subcommand's argument handling (the happy
    path is exercised by every spawned-worker test above)."""

    def test_malformed_connect_rejected(self, capsys):
        from repro.experiments.cli import main

        for target in ("nonsense", "localhost:notaport", "localhost:99999"):
            assert main(["worker", "--connect", target]) == 2
            assert "HOST:PORT" in capsys.readouterr().err

    def test_bad_heartbeat_interval_rejected(self, capsys):
        from repro.experiments.cli import main

        code = main(
            ["worker", "--connect", "127.0.0.1:1", "--heartbeat-interval", "0"]
        )
        assert code == 2
        assert "heartbeat-interval" in capsys.readouterr().err

    def test_bad_fault_spec_rejected(self, capsys):
        from repro.experiments.cli import main

        code = main(["worker", "--connect", "127.0.0.1:1", "--fault", "explode"])
        assert code == 2
        assert "fault token" in capsys.readouterr().err

    def test_unreachable_coordinator_reports_cleanly(self, capsys):
        from repro.experiments.cli import main

        # Port 1 on localhost refuses immediately: clean exit, no traceback.
        assert main(["worker", "--connect", "127.0.0.1:1"]) == 2
        assert "cannot reach coordinator" in capsys.readouterr().err

    def test_bad_drain_after_rejected(self, capsys):
        from repro.experiments.cli import main

        code = main(
            ["worker", "--connect", "127.0.0.1:1", "--drain-after", "0"]
        )
        assert code == 2
        assert "drain-after" in capsys.readouterr().err

    def test_bad_reconnect_knobs_rejected(self, capsys):
        from repro.experiments.cli import main

        code = main(
            ["worker", "--connect", "127.0.0.1:1", "--max-reconnects", "-1"]
        )
        assert code == 2
        assert "max-reconnects" in capsys.readouterr().err
        code = main(
            ["worker", "--connect", "127.0.0.1:1", "--reconnect-backoff", "0"]
        )
        assert code == 2
        assert "reconnect-backoff" in capsys.readouterr().err

    def test_sweep_cluster_flags_require_cluster_backend(self, capsys):
        from repro.experiments.cli import main

        code = main(
            ["sweep", "E3", "--scale", "smoke", "--auth-token", "t"]
        )
        assert code == 2
        assert "--backend cluster" in capsys.readouterr().err
        code = main(
            ["sweep", "E3", "--scale", "smoke", "--worker-fault", "slow:1"]
        )
        assert code == 2
        assert "--backend cluster" in capsys.readouterr().err

"""Unit tests for the persistent results store.

The store's contract has three legs, and each gets pinned here:

1. **Addressing** — a run is keyed by the content fingerprint of its
   *logical* configuration plus the code version.  Anything that can
   change the reported numbers (axes, seed, budget targets, commit)
   changes the address; anything the determinism suite proves *cannot*
   (backend, worker count, round size) does not.
2. **Dedup** — resubmitting an identical configuration is a cache hit
   that performs zero simulation work, asserted with a backend that
   counts executions.
3. **Byte identity** — the stored text, `export`, and the artifact
   writer all produce ``cmp``-identical bytes.
"""

from __future__ import annotations

import json
import sqlite3
import threading

import pytest

from repro.algorithms.vanilla import VanillaGossip
from repro.engine.backends import (
    ExecutionBackend,
    execute_replicate,
    shutdown_shared_backends,
)
from repro.engine.store import (
    STORE_SCHEMA,
    ResultsStore,
    canonical_result_text,
    config_fingerprint,
    current_code_version,
    result_fingerprint,
    run_sweep_cached,
    sweep_fingerprint,
)
from repro.engine.sweeps import (
    PointConfig,
    ReplicateBudget,
    SweepAxis,
    SweepSpec,
    run_sweep,
)
from repro.errors import StoreError
from repro.experiments.reporting import save_sweep_result
from repro.graphs.topologies import complete_graph


@pytest.fixture(autouse=True)
def _release_shared_pools():
    yield
    shutdown_shared_backends()


def build_complete_point(*, n: int) -> PointConfig:
    return PointConfig(
        graph=complete_graph(int(n)),
        algorithm_factory=VanillaGossip,
        initial_values=[float(i) for i in range(int(n))],
        max_time=50.0,
        max_events=100_000,
    )


def tiny_spec(name: str = "TINY", values=(6, 8)) -> SweepSpec:
    return SweepSpec(
        name=name,
        axes=(SweepAxis("n", tuple(values)),),
        builder=build_complete_point,
    )


class CountingBackend(ExecutionBackend):
    """Serial execution that counts how many replicates it ran."""

    name = "counting"

    def __init__(self) -> None:
        self.executed = 0

    def execute(self, specs):
        self.executed += len(specs)
        return [execute_replicate(spec) for spec in specs]


class TestFingerprints:
    def test_deterministic_and_order_insensitive(self):
        spec = tiny_spec()
        budget = ReplicateBudget.fixed(3)
        a = sweep_fingerprint(spec, seed=7, budget=budget, code_version="c1")
        b = sweep_fingerprint(spec, seed=7, budget=budget, code_version="c1")
        assert a == b
        assert config_fingerprint({"x": 1, "y": 2}) == config_fingerprint(
            {"y": 2, "x": 1}
        )

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda s, sd, b, cv: (tiny_spec(values=(6, 10)), sd, b, cv),
            lambda s, sd, b, cv: (tiny_spec(name="OTHER"), sd, b, cv),
            lambda s, sd, b, cv: (s, sd + 1, b, cv),
            lambda s, sd, b, cv: (s, sd, ReplicateBudget.fixed(4), cv),
            lambda s, sd, b, cv: (s, sd, b, "c2"),
        ],
        ids=["axis-values", "sweep-name", "seed", "budget", "code-version"],
    )
    def test_any_logical_change_changes_the_address(self, mutate):
        spec, budget = tiny_spec(), ReplicateBudget.fixed(3)
        base = sweep_fingerprint(spec, seed=7, budget=budget, code_version="c1")
        spec2, seed2, budget2, cv2 = mutate(spec, 7, budget, "c1")
        assert (
            sweep_fingerprint(spec2, seed=seed2, budget=budget2, code_version=cv2)
            != base
        )

    def test_scheduling_knobs_do_not_change_the_address(self):
        """Round size is wall-clock scheduling, proven result-neutral by
        the sweep determinism suite — so it must not split the cache."""
        spec = tiny_spec()
        small = ReplicateBudget.adaptive(
            target_ci=0.5, min_replicates=2, max_replicates=8, round_size=2
        )
        large = ReplicateBudget.adaptive(
            target_ci=0.5, min_replicates=2, max_replicates=8, round_size=64
        )
        assert sweep_fingerprint(
            spec, seed=1, budget=small, code_version="c"
        ) == sweep_fingerprint(spec, seed=1, budget=large, code_version="c")

    def test_result_fingerprint_ignores_points_and_code(self):
        spec = tiny_spec()
        budget = ReplicateBudget.fixed(2)
        result = run_sweep(spec, seed=3, budget=budget)
        again = run_sweep(spec, seed=3, budget=budget)
        assert result_fingerprint(result) == result_fingerprint(again)
        other_seed = run_sweep(spec, seed=4, budget=budget)
        assert result_fingerprint(result) != result_fingerprint(other_seed)

    def test_current_code_version_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODE_VERSION", "pinned-version")
        assert current_code_version() == "pinned-version"


class TestDedupCache:
    def test_hit_is_byte_identical_and_does_zero_work(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        spec = tiny_spec()
        budget = ReplicateBudget.fixed(2)
        first_backend = CountingBackend()
        miss = run_sweep_cached(
            spec, store=store, seed=5, budget=budget,
            backend=first_backend, code_version="c1",
        )
        assert not miss.cache_hit
        assert first_backend.executed > 0
        assert miss.stats["rounds"] >= 1

        second_backend = CountingBackend()
        hit = run_sweep_cached(
            spec, store=store, seed=5, budget=budget,
            backend=second_backend, code_version="c1",
        )
        assert hit.cache_hit
        assert hit.run_id == miss.run_id
        assert second_backend.executed == 0, "cache hit must simulate nothing"
        assert hit.stats == {}
        assert canonical_result_text(hit.result) == canonical_result_text(
            miss.result
        )

    def test_changed_config_or_code_version_misses(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        budget = ReplicateBudget.fixed(2)
        run_sweep_cached(
            tiny_spec(), store=store, seed=5, budget=budget, code_version="c1"
        )
        other_axis = run_sweep_cached(
            tiny_spec(values=(6, 10)), store=store, seed=5, budget=budget,
            code_version="c1",
        )
        assert not other_axis.cache_hit
        other_code = run_sweep_cached(
            tiny_spec(), store=store, seed=5, budget=budget, code_version="c2"
        )
        assert not other_code.cache_hit
        assert len(store.runs()) == 3

    def test_failed_run_is_recorded_and_reraised(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")

        def explode(*, n: int) -> PointConfig:
            raise RuntimeError("boom")

        spec = SweepSpec(
            name="BOOM", axes=(SweepAxis("n", (4,)),), builder=explode
        )
        with pytest.raises(RuntimeError, match="boom"):
            run_sweep_cached(
                spec, store=store, seed=1,
                budget=ReplicateBudget.fixed(1), code_version="c",
            )
        (run,) = store.runs()
        assert run.status == "failed"
        assert "boom" in run.error
        with pytest.raises(StoreError, match="no stored result"):
            store.result_text(run.run_id)

    def test_failed_row_does_not_satisfy_lookups(self, tmp_path):
        """A resubmission after a failure computes again — the cache
        only ever replays ``done`` rows."""
        store = ResultsStore(tmp_path / "store.sqlite")
        spec = tiny_spec()
        fingerprint = sweep_fingerprint(
            spec, seed=5, budget=ReplicateBudget.fixed(1), code_version="c"
        )
        claim, _ = store.begin_run(fingerprint, spec.name)
        store.fail(claim.run_id, "worker lost")
        backend = CountingBackend()
        outcome = run_sweep_cached(
            spec, store=store, seed=5, budget=ReplicateBudget.fixed(1),
            backend=backend, code_version="c",
        )
        assert not outcome.cache_hit
        assert outcome.run_id == claim.run_id
        assert backend.executed > 0
        assert store.get(claim.run_id).status == "done"


class TestStoreLifecycle:
    def test_round_trip_and_envelope(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        spec = tiny_spec()
        result = run_sweep(spec, seed=2, budget=ReplicateBudget.fixed(2))
        fingerprint = sweep_fingerprint(
            spec, seed=2, budget=ReplicateBudget.fixed(2), code_version="c"
        )
        run, created = store.begin_run(fingerprint, spec.name)
        assert created and run.status == "queued"
        assert run.run_id == f"tiny-{fingerprint[:12]}"
        store.mark_running(run.run_id)
        assert store.get(run.run_id).status == "running"
        done = store.finish(run.run_id, result)
        assert done.status == "done"
        assert done.n_points == result.n_points
        assert done.total_replicates == result.total_replicates

        loaded = store.load_result(run.run_id)
        assert canonical_result_text(loaded) == canonical_result_text(result)
        envelope = store.envelope(run.run_id)
        assert envelope["schema"] == STORE_SCHEMA
        assert envelope["run"]["run_id"] == run.run_id
        assert envelope["record"]["sweep_name"] == spec.name

    def test_unknown_run_id_guides_to_listing(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        with pytest.raises(StoreError, match="store list"):
            store.get("nope-000000000000")

    def test_export_matches_artifact_writer_bytes(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        spec = tiny_spec()
        outcome = run_sweep_cached(
            spec, store=store, seed=9, budget=ReplicateBudget.fixed(2),
            code_version="c",
        )
        exported = store.export(outcome.run_id, tmp_path / "export.json")
        saved = outcome.result.save(tmp_path / "direct.json")
        assert exported.read_bytes() == saved.read_bytes()
        assert exported.read_text() == canonical_result_text(outcome.result)

    def test_concurrent_claims_yield_one_creator(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        fingerprint = config_fingerprint({"race": True})
        results = []

        def claim():
            results.append(store.begin_run(fingerprint, "RACE"))

        threads = [threading.Thread(target=claim) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(created for _, created in results) == 1
        assert len({run.run_id for run, _ in results}) == 1
        assert len(store.runs()) == 1

    def test_gc_reaps_dead_rows_and_honours_filters(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        spec = tiny_spec()
        done = run_sweep_cached(
            spec, store=store, seed=1, budget=ReplicateBudget.fixed(1),
            code_version="c",
        )
        queued, _ = store.begin_run(config_fingerprint({"q": 1}), "Q")
        failed, _ = store.begin_run(config_fingerprint({"f": 1}), "F")
        store.fail(failed.run_id, "worker lost")

        kept = store.gc(include_incomplete=False)
        assert kept == [failed.run_id]
        assert {r.run_id for r in store.runs()} == {done.run_id, queued.run_id}

        removed = store.gc()
        assert removed == [queued.run_id]
        # Expiring with a negative cutoff ages out even fresh done rows.
        expired = store.gc(older_than_days=-1.0)
        assert expired == [done.run_id]
        assert store.runs() == []

    def test_corrupt_database_error_carries_recovery_guidance(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"this is not a sqlite database")
        with pytest.raises(StoreError, match="delete"):
            ResultsStore(path).runs()

    def test_foreign_schema_tag_is_refused(self, tmp_path):
        path = tmp_path / "store.sqlite"
        ResultsStore(path)
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE meta SET value = 'repro-store/v999' WHERE key = 'schema'"
            )
        with pytest.raises(StoreError, match="repro-store/v999"):
            ResultsStore(path)

    def test_status_filter_is_validated(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        with pytest.raises(StoreError, match="status"):
            store.runs(status="sideways")


class TestSaveSweepResult:
    def test_distinct_configs_no_longer_overwrite(self, tmp_path):
        """The silent-overwrite bug: two sweeps of the same id with
        different grids used to land on one filename, last writer wins.
        Now each configuration gets its own file and the bare name is an
        alias for the latest save (what the CI ``cmp`` jobs read)."""
        budget = ReplicateBudget.fixed(1)
        first = run_sweep(tiny_spec(values=(6,)), seed=1, budget=budget)
        second = run_sweep(tiny_spec(values=(8,)), seed=1, budget=budget)
        path_a = save_sweep_result(first, tmp_path)
        path_b = save_sweep_result(second, tmp_path)
        assert path_a != path_b
        assert path_a.exists() and path_b.exists()
        alias = tmp_path / "sweep_tiny.json"
        assert alias.exists()
        assert alias.read_bytes() == path_b.read_bytes()
        # Saving the first again points the alias back, files intact.
        save_sweep_result(first, tmp_path)
        assert alias.read_bytes() == path_a.read_bytes()
        assert path_b.read_bytes() == second.save(tmp_path / "check.json").read_bytes()

    def test_explicit_fingerprint_names_the_artifact(self, tmp_path):
        result = run_sweep(
            tiny_spec(values=(6,)), seed=1, budget=ReplicateBudget.fixed(1)
        )
        path = save_sweep_result(result, tmp_path, fingerprint="a" * 64)
        assert path.name == f"sweep_tiny_{'a' * 12}.json"

    def test_same_config_same_primary_path(self, tmp_path):
        budget = ReplicateBudget.fixed(1)
        result = run_sweep(tiny_spec(values=(6,)), seed=1, budget=budget)
        again = run_sweep(tiny_spec(values=(6,)), seed=1, budget=budget)
        assert save_sweep_result(result, tmp_path) == save_sweep_result(
            again, tmp_path
        )


class TestStoreCli:
    def _seed_store(self, tmp_path):
        from repro.experiments.cli import main

        db = tmp_path / "store.sqlite"
        store = ResultsStore(db)
        outcome = run_sweep_cached(
            tiny_spec(), store=store, seed=5,
            budget=ReplicateBudget.fixed(1), code_version="c1",
        )
        return main, db, outcome

    def test_list_show_export_gc(self, tmp_path, capsys):
        main, db, outcome = self._seed_store(tmp_path)
        assert main(["store", "--db", str(db), "list"]) == 0
        listing = capsys.readouterr().out
        assert outcome.run_id in listing and "done" in listing

        assert main(["store", "--db", str(db), "show", outcome.run_id]) == 0
        shown = capsys.readouterr().out
        assert outcome.fingerprint in shown
        assert "sweep TINY" in shown

        out = tmp_path / "export.json"
        assert main(
            ["store", "--db", str(db), "export", outcome.run_id,
             "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert json.loads(out.read_text())["sweep_name"] == "TINY"

        assert main(["store", "--db", str(db), "gc"]) == 0
        assert "removed 0" in capsys.readouterr().out

    def test_env_var_supplies_the_database(self, tmp_path, capsys, monkeypatch):
        main, db, outcome = self._seed_store(tmp_path)
        monkeypatch.setenv("REPRO_STORE", str(db))
        assert main(["store", "list"]) == 0
        assert outcome.run_id in capsys.readouterr().out

    def test_missing_database_is_a_clean_error(self, tmp_path, capsys,
                                               monkeypatch):
        from repro.experiments.cli import main

        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert main(["store", "list"]) == 2
        assert "REPRO_STORE" in capsys.readouterr().err

    def test_unknown_run_id_exits_two(self, tmp_path, capsys):
        main, db, _ = self._seed_store(tmp_path)
        assert main(["store", "--db", str(db), "show", "missing-ffffffffffff"]) == 2
        assert "store list" in capsys.readouterr().err


class TestTypedQueries:
    """The read-side API the report/claims pipeline consumes:
    ``results_for_sweep`` (query-by-experiment) and ``latest_result``."""

    def _seed(self, store, *, names=("TINY",), seeds=(5,)):
        outcomes = []
        for name in names:
            for seed in seeds:
                outcomes.append(
                    run_sweep_cached(
                        tiny_spec(name=name), store=store, seed=seed,
                        budget=ReplicateBudget.fixed(1), code_version="c",
                    )
                )
        return outcomes

    def test_results_for_sweep_returns_done_rows_with_results(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        self._seed(store, names=("TINY", "OTHER"), seeds=(5, 6))
        rows = store.results_for_sweep("TINY")
        assert len(rows) == 2
        for run, result in rows:
            assert run.status == "done"
            assert run.sweep_name == "TINY"
            assert result.sweep_name == "TINY"
        assert {result.seed for _, result in rows} == {5, 6}

    def test_results_for_sweep_skips_unfinished_and_failed_rows(self, tmp_path):
        store = ResultsStore(tmp_path / "store.sqlite")
        (done,) = self._seed(store)
        queued, _ = store.begin_run("f" * 64, "TINY")
        failed, _ = store.begin_run("e" * 64, "TINY")
        store.fail(failed.run_id, "worker lost")
        rows = store.results_for_sweep("TINY")
        assert [run.run_id for run, _ in rows] == [done.run_id]

    def test_latest_result_returns_the_newest_done_run(self, tmp_path):
        db = tmp_path / "store.sqlite"
        store = ResultsStore(db)
        first, second = self._seed(store, seeds=(5, 6))
        # Same-second creation would leave "newest" ambiguous; age the
        # first run explicitly.
        with sqlite3.connect(db) as conn:
            conn.execute(
                "UPDATE runs SET created_utc = '2000-01-01T00:00:00Z' "
                "WHERE run_id = ?",
                (first.run_id,),
            )
        run, result = store.latest_result("TINY")
        assert run.run_id == second.run_id
        assert canonical_result_text(result) == canonical_result_text(
            second.result
        )

    def test_latest_result_missing_sweep_names_the_seeding_command(
        self, tmp_path
    ):
        store = ResultsStore(tmp_path / "store.sqlite")
        self._seed(store)
        with pytest.raises(StoreError) as err:
            store.latest_result("E3")
        message = str(err.value)
        assert "no completed runs of sweep 'E3'" in message
        assert "repro-experiments sweep E3" in message

    def test_schema_mismatch_fails_before_any_read(self, tmp_path):
        db = tmp_path / "store.sqlite"
        ResultsStore(db)
        with sqlite3.connect(db) as conn:
            conn.execute(
                "UPDATE meta SET value = 'repro-store/v999' "
                "WHERE key = 'schema'"
            )
        with pytest.raises(StoreError, match="repro-store/v999"):
            ResultsStore(db)

"""Unit tests for the spectral toolkit, cross-checked against closed forms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.theory import exact_algebraic_connectivity
from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs.graph import Graph
from repro.graphs.spectral import (
    algebraic_connectivity,
    fiedler_vector,
    laplacian_matrix,
    laplacian_spectrum,
    normalized_laplacian_matrix,
    spectral_gap,
    spectral_mixing_time,
)
from repro.graphs.topologies import (
    complete_graph,
    cycle_graph,
    hypercube_graph,
    path_graph,
    star_graph,
)


class TestLaplacian:
    def test_row_sums_zero(self, k6):
        matrix = laplacian_matrix(k6)
        assert np.allclose(matrix.sum(axis=1), 0.0)

    def test_diagonal_is_degrees(self, small_path):
        matrix = laplacian_matrix(small_path)
        assert np.array_equal(np.diag(matrix), small_path.degrees)

    def test_quadratic_form_is_edge_sum(self, c8):
        x = np.arange(8, dtype=float)
        expected = sum(
            (x[u] - x[v]) ** 2 for u, v in c8.edges
        )
        assert x @ laplacian_matrix(c8) @ x == pytest.approx(expected)

    def test_normalized_laplacian_spectrum_range(self, c8):
        values = np.linalg.eigvalsh(normalized_laplacian_matrix(c8))
        assert values.min() == pytest.approx(0.0, abs=1e-9)
        assert values.max() <= 2.0 + 1e-9


class TestSpectrum:
    @pytest.mark.parametrize(
        "family,builder,n",
        [
            ("complete", complete_graph, 9),
            ("path", path_graph, 11),
            ("cycle", cycle_graph, 10),
            ("star", star_graph, 8),
        ],
    )
    def test_algebraic_connectivity_matches_theory(self, family, builder, n):
        graph = builder(n)
        assert algebraic_connectivity(graph) == pytest.approx(
            exact_algebraic_connectivity(family, n), rel=1e-9
        )

    def test_hypercube_connectivity(self):
        graph = hypercube_graph(4)
        assert algebraic_connectivity(graph) == pytest.approx(2.0, rel=1e-9)

    def test_spectrum_sorted_and_sums_to_degree_total(self, k6):
        spectrum = laplacian_spectrum(k6)
        assert np.all(np.diff(spectrum) >= -1e-9)
        assert spectrum.sum() == pytest.approx(float(k6.degrees.sum()))

    def test_disconnected_graph_has_zero_gap(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        assert algebraic_connectivity(graph) == pytest.approx(0.0, abs=1e-9)

    def test_spectral_gap_alias(self, k6):
        assert spectral_gap(k6) == algebraic_connectivity(k6)

    def test_needs_two_vertices(self):
        with pytest.raises(GraphError):
            algebraic_connectivity(Graph(1, []))


class TestFiedler:
    def test_unit_norm_and_orthogonal_to_ones(self, c8):
        vector = fiedler_vector(c8)
        assert np.linalg.norm(vector) == pytest.approx(1.0)
        assert vector.sum() == pytest.approx(0.0, abs=1e-9)

    def test_eigen_equation(self, small_path):
        vector = fiedler_vector(small_path)
        gap = algebraic_connectivity(small_path)
        residual = laplacian_matrix(small_path) @ vector - gap * vector
        assert np.linalg.norm(residual) < 1e-8

    def test_sign_deterministic(self, c8):
        a = fiedler_vector(c8)
        b = fiedler_vector(c8)
        assert np.array_equal(a, b)

    def test_disconnected_rejected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            fiedler_vector(graph)

    def test_separates_dumbbell_sides(self, small_dumbbell):
        vector = fiedler_vector(small_dumbbell.graph)
        partition = small_dumbbell.partition
        signs_1 = np.sign(vector[partition.vertices_1])
        signs_2 = np.sign(vector[partition.vertices_2])
        assert len(np.unique(signs_1)) == 1
        assert len(np.unique(signs_2)) == 1
        assert signs_1[0] != signs_2[0]


class TestMixingTime:
    def test_complete_graph_value(self):
        graph = complete_graph(16)
        assert spectral_mixing_time(graph) == pytest.approx(4.0 / 16.0)

    def test_custom_ratio(self):
        graph = complete_graph(16)
        t_half = spectral_mixing_time(graph, variance_ratio=0.5)
        assert t_half == pytest.approx(2.0 * math.log(2.0) / 16.0)

    def test_invalid_ratio(self, k6):
        with pytest.raises(GraphError):
            spectral_mixing_time(k6, variance_ratio=1.5)

    def test_disconnected_infinite(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(DisconnectedGraphError):
            spectral_mixing_time(graph)

"""Unit tests for the analysis layer (potentials, operators, walks, bounds)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.bounds import (
    dumbbell_predictions,
    theorem1_lower_bound,
    theorem2_upper_bound,
)
from repro.analysis.dominance import (
    couple_with_dominating_walk,
    dominance_violations,
    empirical_cdf,
    stochastically_dominates,
)
from repro.analysis.epoch_trace import epoch_potential_trace
from repro.analysis.operators import (
    expected_update_matrix,
    log_norm_walk,
    operator_norm,
    sample_epoch_operators,
)
from repro.analysis.potential import decompose, imbalance_probe, sigma_probe
from repro.analysis.random_walk import (
    dominating_walk_paths,
    settling_time_estimate,
    simple_random_walk_paths,
    tail_probability_estimate,
    theorem3_tail_bound,
    time_to_stay_below,
)
from repro.analysis.theory import (
    exact_algebraic_connectivity,
    expected_variance_decay_rate,
    vanilla_variance_halving_time,
)
from repro.errors import AnalysisError
from repro.graphs.composites import two_cliques
from repro.graphs.topologies import complete_graph


class TestPotential:
    def test_exact_identity(self, medium_dumbbell, rng):
        values = rng.normal(size=32)
        result = decompose(values, medium_dumbbell.partition)
        assert result.variance == pytest.approx(
            result.sigma**2 + result.imbalance, rel=1e-9
        )

    def test_paper_mu_upper_bounds_variance(self, medium_dumbbell, rng):
        values = rng.normal(size=32)
        result = decompose(values, medium_dumbbell.partition)
        assert result.paper_upper_bound >= result.variance - 1e-12

    def test_piecewise_constant_has_zero_sigma(self, medium_dumbbell):
        partition = medium_dumbbell.partition
        values = np.where(partition.side == 0, 3.0, -1.0)
        result = decompose(values, partition)
        assert result.sigma == pytest.approx(0.0, abs=1e-12)
        assert result.mu1 == pytest.approx(3.0)
        assert result.mu2 == pytest.approx(-1.0)

    def test_uniform_vector_all_zero(self, medium_dumbbell):
        result = decompose(np.full(32, 2.5), medium_dumbbell.partition)
        assert result.variance == pytest.approx(0.0, abs=1e-12)
        assert result.paper_mu == pytest.approx(0.0, abs=1e-12)

    def test_shape_validated(self, medium_dumbbell):
        with pytest.raises(ValueError):
            decompose(np.zeros(5), medium_dumbbell.partition)

    def test_probes(self, medium_dumbbell, rng):
        values = rng.normal(size=32)
        partition = medium_dumbbell.partition
        assert sigma_probe(partition)(values) == pytest.approx(
            decompose(values, partition).sigma
        )
        assert imbalance_probe(partition)(values) == pytest.approx(
            decompose(values, partition).paper_mu
        )

    def test_to_dict(self, medium_dumbbell, rng):
        info = decompose(rng.normal(size=32), medium_dumbbell.partition).to_dict()
        assert set(info) >= {"mu1", "mu2", "sigma", "variance"}


class TestOperators:
    def test_expected_update_matrix_stochastic(self, k6):
        matrix = expected_update_matrix(k6)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.allclose(matrix, matrix.T)

    def test_operator_norm_identity(self):
        assert operator_norm(np.eye(4)) == pytest.approx(1.0)
        # Restricted to zero-mean subspace the all-ones projector is 0.
        assert operator_norm(np.full((4, 4), 0.25),
                             zero_mean_subspace=True) == pytest.approx(0.0, abs=1e-12)

    def test_operator_norm_validation(self):
        with pytest.raises(AnalysisError):
            operator_norm(np.zeros((2, 3)))

    def test_sampled_operators_fix_constants(self, small_dumbbell):
        samples = sample_epoch_operators(
            small_dumbbell.partition, epoch_length=2, n_epochs=3, seed=0
        )
        assert len(samples) == 3
        ones = np.ones(16)
        for sample in samples:
            assert np.allclose(sample.matrix @ ones, ones)
            assert sample.norm <= 16 + 1e-9  # Eq. 12
            assert sample.n_ticks > 0
            assert sample.duration > 0

    def test_operator_matches_simulation_on_state(self, small_dumbbell, rng):
        """The materialized A_k must act like the actual update sequence."""
        from repro.algorithms.nonconvex import NonConvexSparseCutGossip
        from repro.clocks.poisson import PoissonEdgeClocks

        partition = small_dumbbell.partition
        graph = small_dumbbell.graph
        epoch_length = 2
        # Sample the operator with a fixed clock seed...
        samples = sample_epoch_operators(
            partition, epoch_length=epoch_length, n_epochs=1, seed=99
        )
        # ...then replay the identical tick sequence on a concrete vector.
        algorithm = NonConvexSparseCutGossip(partition, epoch_length=epoch_length)
        clocks = PoissonEdgeClocks(graph.n_edges, seed=99)
        x = rng.normal(size=16)
        expected = samples[0].matrix @ x
        values = x.tolist()
        ticks = np.zeros(graph.n_edges, dtype=int)
        algorithm.setup(graph, x, rng)
        done = False
        while not done:
            # Match sample_epoch_operators' batch size: the Poisson process
            # draws gaps and edges per batch, so batching is part of the
            # stream's draw order.
            times, edges = clocks.next_batch(4096)
            for t, e in zip(times.tolist(), edges.tolist()):
                ticks[e] += 1
                u, v = graph.edge_endpoints(e)
                result = algorithm.on_tick(e, u, v, t, int(ticks[e]), values)
                if result is not None:
                    values[u], values[v] = result
                if algorithm.swap_count == 1:
                    done = True
                    break
        assert np.allclose(values, expected, atol=1e-9)

    def test_log_norm_walk_shape(self, small_dumbbell):
        samples = sample_epoch_operators(
            small_dumbbell.partition, epoch_length=1, n_epochs=4, seed=1
        )
        walk = log_norm_walk(samples)
        assert walk.shape == (5,)
        assert walk[0] == 0.0

    def test_sample_validation(self, small_dumbbell):
        with pytest.raises(AnalysisError):
            sample_epoch_operators(
                small_dumbbell.partition, epoch_length=1, n_epochs=0
            )


class TestRandomWalks:
    def test_simple_walk_shape_and_parity(self):
        paths = simple_random_walk_paths(10, 50, seed=0)
        assert paths.shape == (50, 11)
        assert np.all(paths[:, 0] == 0)
        # After k steps the walk has the parity of k.
        assert np.all((paths[:, 10] + 10) % 2 == 0)

    def test_theorem3_bound_monotone(self):
        assert theorem3_tail_bound(1.0) > theorem3_tail_bound(2.0)
        with pytest.raises(AnalysisError):
            theorem3_tail_bound(-1.0)

    def test_tail_estimate_below_hoeffding(self):
        for s in (1.0, 2.0):
            mc = tail_probability_estimate(100, s, n_paths=4000, seed=1)
            assert mc <= math.exp(-s * s / 2.0) + 0.03

    def test_dominating_walk_drift(self):
        paths = dominating_walk_paths(400, 64, n_paths=400, seed=2)
        # Mean increment is -(1/4) log n (see docstring).
        empirical_drift = paths[:, -1].mean() / 400
        assert empirical_drift == pytest.approx(-0.25 * math.log(64), rel=0.15)

    def test_time_to_stay_below(self):
        path = np.array([[0.0, -3.0, -1.0, -3.0, -4.0, -5.0]])
        assert time_to_stay_below(path, -2.0).tolist() == [2]
        always_below = np.array([[0.0, -3.0, -4.0]])
        assert time_to_stay_below(always_below, -2.0).tolist() == [0]

    def test_settling_time_positive_and_bounded(self):
        t0 = settling_time_estimate(64, n_paths=500, seed=3)
        assert 0 <= t0 <= 64

    def test_validation(self):
        with pytest.raises(AnalysisError):
            simple_random_walk_paths(0, 5)
        with pytest.raises(AnalysisError):
            dominating_walk_paths(5, 1)
        with pytest.raises(AnalysisError):
            settling_time_estimate(16, confidence=1.5)


class TestDominance:
    def test_empirical_cdf(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0])
        assert cdf(0.5) == 0.0
        assert cdf(2.0) == pytest.approx(2 / 3)
        assert cdf(10.0) == 1.0
        with pytest.raises(AnalysisError):
            empirical_cdf([])

    def test_stochastic_dominance_detects_shift(self, rng):
        lower = rng.normal(0.0, 1.0, size=500)
        upper = lower + 2.0
        assert stochastically_dominates(upper, lower)
        assert not stochastically_dominates(lower, upper, tolerance=0.1)

    def test_coupling_dominates_for_compliant_increments(self):
        # Increments satisfying the premises: all <= log n, at least half
        # below -(3/2) log n.
        n = 16
        increments = [-10.0, -9.0, -8.0, 1.0, 0.5, -7.5]
        walk, dominating = couple_with_dominating_walk(increments, n, seed=0)
        assert dominance_violations(walk, dominating) == 0

    def test_coupling_flags_violating_increments(self):
        n = 16
        # An increment far above +log n cannot be dominated.
        increments = [50.0, -1.0]
        walk, dominating = couple_with_dominating_walk(increments, n, seed=0)
        assert dominance_violations(walk, dominating) > 0

    def test_coupling_validation(self):
        with pytest.raises(AnalysisError):
            couple_with_dominating_walk([], 16)
        with pytest.raises(AnalysisError):
            couple_with_dominating_walk([1.0], 1)
        with pytest.raises(AnalysisError):
            dominance_violations(np.zeros(3), np.zeros(4))


class TestBounds:
    def test_theorem1_formula(self, medium_dumbbell):
        bound = theorem1_lower_bound(medium_dumbbell.partition)
        assert bound == pytest.approx((1 - 1 / math.e) ** 2 / 4 * 16)

    def test_theorem1_scales_with_cut(self):
        narrow = two_cliques(8, 8, n_bridges=1).partition
        wide = two_cliques(8, 8, n_bridges=4).partition
        assert theorem1_lower_bound(narrow) == pytest.approx(
            4 * theorem1_lower_bound(wide)
        )

    def test_theorem2_formula(self, medium_dumbbell):
        bound = theorem2_upper_bound(medium_dumbbell.partition, constant=3.0)
        assert bound == pytest.approx(3.0 * math.log(32) * 0.5)

    def test_dumbbell_predictions(self):
        info = dumbbell_predictions(64)
        assert info["convex_lower_bound"] == pytest.approx(
            (1 - 1 / math.e) ** 2 / 4 * 32
        )
        # The theorem constants only separate asymptotically: the
        # guaranteed speedup crosses 1 between n=64 and n=256 and grows.
        large = dumbbell_predictions(256)
        assert large["predicted_speedup_at_least"] > 1.0
        assert (
            large["predicted_speedup_at_least"]
            > info["predicted_speedup_at_least"]
        )
        with pytest.raises(AnalysisError):
            dumbbell_predictions(7)

    def test_bound_validation(self, medium_dumbbell):
        with pytest.raises(AnalysisError):
            theorem2_upper_bound(medium_dumbbell.partition, constant=0)


class TestTheory:
    def test_exact_connectivities(self):
        assert exact_algebraic_connectivity("complete", 9) == 9.0
        assert exact_algebraic_connectivity("star", 5) == 1.0
        with pytest.raises(AnalysisError):
            exact_algebraic_connectivity("moebius", 5)

    def test_decay_rate_dirichlet(self, k6):
        x = np.arange(6, dtype=float)
        from repro.graphs.spectral import laplacian_matrix

        expected = 0.5 * float(x @ laplacian_matrix(k6) @ x)
        assert expected_variance_decay_rate(k6, x) == pytest.approx(expected)
        assert expected_variance_decay_rate(k6, np.ones(6)) == pytest.approx(0.0)

    def test_halving_time(self):
        assert vanilla_variance_halving_time(complete_graph(8)) == pytest.approx(
            2 * math.log(2) / 8
        )


class TestEpochTrace:
    def test_records_have_consistent_potentials(self, small_dumbbell, rng):
        partition = small_dumbbell.partition
        x0 = rng.normal(size=16)
        x0 -= x0.mean()
        records = epoch_potential_trace(
            partition, x0, epoch_length=2, n_epochs=2, seed=0
        )
        assert len(records) == 2
        first = records[0]
        assert first.sigma_start == pytest.approx(
            decompose(x0, partition).sigma
        )
        assert first.duration > 0
        # Epoch chaining: end of epoch 1 = start of epoch 2.
        assert records[1].sigma_start == pytest.approx(first.sigma_end)
        assert records[1].variance_start == pytest.approx(first.variance_end)

    def test_mixing_contracts_sigma_within_epoch(self, medium_dumbbell, rng):
        x0 = rng.normal(size=32)
        x0 -= x0.mean()
        records = epoch_potential_trace(
            medium_dumbbell.partition, x0, epoch_length=6, n_epochs=1, seed=1
        )
        record = records[0]
        assert record.sigma_pre_swap < record.sigma_start
        assert record.sigma_contraction < 1.0

    def test_validation(self, small_dumbbell):
        with pytest.raises(AnalysisError):
            epoch_potential_trace(
                small_dumbbell.partition, np.zeros(16), epoch_length=1,
                n_epochs=0,
            )
        with pytest.raises(AnalysisError):
            epoch_potential_trace(
                small_dumbbell.partition, np.zeros(5), epoch_length=1,
                n_epochs=1,
            )

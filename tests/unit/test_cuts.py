"""Unit tests for sparse-cut detection."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graphs.cuts import (
    brute_force_min_conductance_cut,
    conductance_of_side,
    fiedler_sweep_cut,
)
from repro.graphs.composites import two_cliques
from repro.graphs.graph import Graph
from repro.graphs.topologies import complete_graph, path_graph


class TestSweepCut:
    def test_recovers_planted_dumbbell_cut(self, small_dumbbell):
        result = fiedler_sweep_cut(small_dumbbell.graph)
        planted = small_dumbbell.partition
        assert result.partition.cut_size == planted.cut_size == 1
        assert set(result.partition.vertices_1.tolist()) in (
            set(planted.vertices_1.tolist()),
            set(planted.vertices_2.tolist()),
        )

    def test_recovers_unbalanced_cut(self):
        pair = two_cliques(5, 11, n_bridges=1)
        result = fiedler_sweep_cut(pair.graph)
        assert result.partition.cut_size == 1
        assert result.partition.n1 == 5

    def test_connected_sides_flag(self, medium_dumbbell):
        result = fiedler_sweep_cut(
            medium_dumbbell.graph, require_connected_sides=True
        )
        ok1, ok2 = result.partition.sides_connected()
        assert ok1 and ok2

    def test_path_cut_in_middle(self):
        result = fiedler_sweep_cut(path_graph(10))
        assert result.partition.cut_size == 1
        assert result.partition.n1 == 5

    def test_tiny_graph_rejected(self):
        with pytest.raises(GraphError):
            fiedler_sweep_cut(Graph(1, []))

    def test_result_to_dict(self, small_dumbbell):
        info = fiedler_sweep_cut(small_dumbbell.graph).to_dict()
        assert info["method"] == "fiedler_sweep"
        assert info["cut_size"] == 1


class TestBruteForce:
    def test_matches_sweep_on_small_dumbbell(self):
        pair = two_cliques(4, 4, n_bridges=1)
        exact = brute_force_min_conductance_cut(pair.graph)
        sweep = fiedler_sweep_cut(pair.graph)
        assert exact.conductance == pytest.approx(sweep.conductance)

    def test_exact_on_path(self):
        result = brute_force_min_conductance_cut(path_graph(6))
        # Middle cut: 1 crossing edge / volume 5.
        assert result.conductance == pytest.approx(1 / 5)

    def test_size_guard(self):
        with pytest.raises(GraphError, match="limited"):
            brute_force_min_conductance_cut(complete_graph(25))

    def test_sweep_is_optimal_on_cycles(self):
        from repro.graphs.topologies import cycle_graph

        exact = brute_force_min_conductance_cut(cycle_graph(10))
        sweep = fiedler_sweep_cut(cycle_graph(10))
        assert sweep.conductance <= exact.conductance * 1.5  # Cheeger slack


class TestConductanceHelper:
    def test_matches_partition_value(self, k6):
        assert conductance_of_side(k6, [0, 1, 2]) == pytest.approx(9 / 15)

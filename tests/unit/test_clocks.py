"""Unit tests for clock processes and counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clocks.counters import TickCounters
from repro.clocks.events import EdgeTick
from repro.clocks.poisson import PoissonEdgeClocks
from repro.clocks.schedule import RoundRobinSchedule, ScriptedSchedule


class TestEdgeTick:
    def test_ordering_by_time(self):
        assert EdgeTick(1.0, 5) < EdgeTick(2.0, 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeTick(-1.0, 0)
        with pytest.raises(ValueError):
            EdgeTick(0.0, -1)


class TestPoissonClocks:
    def test_times_strictly_increasing(self):
        clocks = PoissonEdgeClocks(10, seed=0)
        times, _ = clocks.next_batch(1000)
        assert np.all(np.diff(times) > 0)

    def test_batches_continue_in_time(self):
        clocks = PoissonEdgeClocks(10, seed=0)
        first, _ = clocks.next_batch(100)
        second, _ = clocks.next_batch(100)
        assert second[0] > first[-1]
        assert clocks.now == pytest.approx(float(second[-1]))

    def test_edge_ids_in_range(self):
        clocks = PoissonEdgeClocks(7, seed=1)
        _, edges = clocks.next_batch(500)
        assert edges.min() >= 0 and edges.max() < 7

    def test_mean_rate_close_to_total(self):
        m = 20
        clocks = PoissonEdgeClocks(m, seed=2)
        times, _ = clocks.next_batch(20_000)
        # 20k events at total rate 20 should take about 1000 time units.
        assert times[-1] == pytest.approx(1000.0, rel=0.05)

    def test_edge_counts_roughly_uniform(self):
        m = 5
        clocks = PoissonEdgeClocks(m, seed=3)
        _, edges = clocks.next_batch(25_000)
        counts = np.bincount(edges, minlength=m)
        assert counts.min() > 0.9 * 25_000 / m
        assert counts.max() < 1.1 * 25_000 / m

    def test_heterogeneous_rates(self):
        rates = np.array([1.0, 9.0])
        clocks = PoissonEdgeClocks(2, rates=rates, seed=4)
        assert clocks.total_rate == pytest.approx(10.0)
        _, edges = clocks.next_batch(20_000)
        fraction_edge_1 = float(np.mean(edges == 1))
        assert fraction_edge_1 == pytest.approx(0.9, abs=0.02)

    def test_expected_ticks_per_edge(self):
        clocks = PoissonEdgeClocks(3, seed=0)
        assert np.allclose(clocks.expected_ticks_per_edge(2.5), 2.5)
        weighted = PoissonEdgeClocks(2, rates=np.array([1.0, 2.0]), seed=0)
        assert np.allclose(weighted.expected_ticks_per_edge(3.0), [3.0, 6.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonEdgeClocks(0)
        with pytest.raises(ValueError):
            PoissonEdgeClocks(2, rates=np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            PoissonEdgeClocks(2, rates=np.array([1.0]))
        clocks = PoissonEdgeClocks(2, seed=0)
        with pytest.raises(ValueError):
            clocks.next_batch(0)

    def test_reproducible_with_seed(self):
        a_times, a_edges = PoissonEdgeClocks(5, seed=9).next_batch(50)
        b_times, b_edges = PoissonEdgeClocks(5, seed=9).next_batch(50)
        assert np.array_equal(a_times, b_times)
        assert np.array_equal(a_edges, b_edges)


class TestSchedules:
    def test_round_robin_cycles(self):
        schedule = RoundRobinSchedule(3)
        _, edges = schedule.next_batch(7)
        assert edges.tolist() == [0, 1, 2, 0, 1, 2, 0]

    def test_round_robin_spacing(self):
        schedule = RoundRobinSchedule(4, spacing=0.5)
        times, _ = schedule.next_batch(3)
        assert times.tolist() == [0.5, 1.0, 1.5]

    def test_round_robin_default_spacing_matches_rate(self):
        schedule = RoundRobinSchedule(4)
        times, _ = schedule.next_batch(4)
        assert times[-1] == pytest.approx(1.0)

    def test_scripted_schedule_emits_and_dries_up(self):
        schedule = ScriptedSchedule([(0.5, 1), (1.5, 0)])
        times, edges = schedule.next_batch(10)
        assert times.tolist() == [0.5, 1.5]
        assert edges.tolist() == [1, 0]
        empty_times, empty_edges = schedule.next_batch(10)
        assert len(empty_times) == 0 and len(empty_edges) == 0

    def test_scripted_uniform_times(self):
        schedule = ScriptedSchedule.uniform_times([2, 0, 1], spacing=2.0)
        times, edges = schedule.next_batch(3)
        assert times.tolist() == [2.0, 4.0, 6.0]
        assert edges.tolist() == [2, 0, 1]
        assert schedule.remaining == 0

    def test_scripted_validation(self):
        with pytest.raises(ValueError, match="increasing"):
            ScriptedSchedule([(1.0, 0), (1.0, 1)])
        with pytest.raises(ValueError, match="out of range"):
            ScriptedSchedule([(1.0, 5)], n_edges=2)


class TestTickCounters:
    def test_record_and_count(self):
        counters = TickCounters(3)
        assert counters.record(1) == 1
        assert counters.record(1) == 2
        assert counters.count(1) == 2
        assert counters.count(0) == 0
        assert counters.total == 2

    def test_reset(self):
        counters = TickCounters(2)
        counters.record(0)
        counters.reset()
        assert counters.total == 0

    def test_counts_copy(self):
        counters = TickCounters(2)
        counters.record(0)
        snapshot = counters.counts()
        snapshot[0] = 99
        assert counters.count(0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TickCounters(0)
        counters = TickCounters(2)
        with pytest.raises(ValueError):
            counters.record(5)

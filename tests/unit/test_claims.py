"""Unit tests for the machine-checkable claim catalogue.

Every claim kind is pinned on hand-built :class:`SweepResult` fixtures
where the right verdict is known by construction — the drift gate's
predicates must pass exactly when the stored numbers sit inside the
declared tolerance and fail (with a diagnosable detail string) when
they do not.  The CI-facing surfaces (``get_claims``, catalogue
integrity, the bundle payload) are pinned here too.
"""

from __future__ import annotations

import math

import pytest

from repro.engine.sweeps import PointResult, ReplicateBudget, SweepResult
from repro.errors import ExperimentError
from repro.reports.claims import (
    CLAIM_SEEDS,
    CLAIMS,
    CLAIMS_SCHEMA,
    BoundClaim,
    CensoringClaim,
    DominanceClaim,
    ExponentClaim,
    RatioClaim,
    SpreadClaim,
    claims_bundle,
    evaluate_claims,
    get_claims,
    required_sweeps,
    verdict_table,
)


def make_point(index, params, estimate, samples=None):
    if samples is None:
        samples = [estimate] * 3
    return PointResult(
        index=index,
        params=dict(params),
        estimate=estimate,
        ci_low=estimate,
        ci_high=estimate,
        quantile=0.5,
        threshold=1e-3,
        samples=list(samples),
        n_censored=sum(1 for s in samples if math.isinf(s)),
        n_diverged=sum(1 for s in samples if math.isnan(s)),
        budget_exhausted=False,
    )


def make_result(name, axes, rows):
    """``rows`` is a list of (params, estimate) or (params, estimate,
    samples) tuples."""
    points = [make_point(i, *row) for i, row in enumerate(rows)]
    return SweepResult(
        sweep_name=name,
        axes={k: list(v) for k, v in axes.items()},
        seed=0,
        budget=ReplicateBudget.fixed(3),
        points=points,
    )


class TestExponentClaim:
    CLAIM = ExponentClaim(
        claim_id="x-linear",
        experiment_id="EX",
        sweep="X",
        paper_ref="ref",
        statement="s",
        axis="n",
        select={"algorithm": "vanilla"},
        low=0.7,
        high=1.5,
    )

    def _result(self, exponent):
        rows = []
        for n in (16, 32, 64):
            rows.append(({"n": n, "algorithm": "vanilla"}, 0.5 * n**exponent))
            rows.append(({"n": n, "algorithm": "other"}, 1.0))
        return make_result("X", {"n": [16, 32, 64]}, rows)

    def test_in_band_passes_and_reports_the_fit(self):
        verdict = self.CLAIM.evaluate({"X": self._result(1.0)})
        assert verdict.passed
        assert verdict.observed == pytest.approx(1.0, abs=1e-9)
        assert "3 points" in verdict.detail

    @pytest.mark.parametrize("exponent", [0.4, 2.0])
    def test_out_of_band_fails(self, exponent):
        verdict = self.CLAIM.evaluate({"X": self._result(exponent)})
        assert not verdict.passed
        assert verdict.observed == pytest.approx(exponent, abs=1e-9)

    def test_underdetermined_fit_fails_loudly(self):
        result = make_result(
            "X", {"n": [16]}, [({"n": 16, "algorithm": "vanilla"}, 3.0)]
        )
        verdict = self.CLAIM.evaluate({"X": result})
        assert not verdict.passed
        assert verdict.observed == "underdetermined"

    def test_censored_points_are_excluded_from_the_fit(self):
        result = self._result(1.0)
        result.points.append(
            make_point(
                99, {"n": 128, "algorithm": "vanilla"}, math.inf,
                samples=[math.inf] * 3,
            )
        )
        verdict = self.CLAIM.evaluate({"X": result})
        assert verdict.passed
        assert "1 censored excluded" in verdict.detail

    def test_missing_sweep_is_an_experiment_error(self):
        with pytest.raises(ExperimentError, match="needs sweep 'X'"):
            self.CLAIM.evaluate({})


class TestRatioClaim:
    CLAIM = RatioClaim(
        claim_id="x-speedup",
        experiment_id="EX",
        sweep="X",
        paper_ref="ref",
        statement="s",
        numerator={"algorithm": "vanilla"},
        denominator={"algorithm": "a"},
        axis="n",
        low=4.0,
        high=math.inf,
    )

    def _result(self, ratio_at_64):
        rows = [
            ({"n": 32, "algorithm": "vanilla"}, 10.0),
            ({"n": 32, "algorithm": "a"}, 10.0),
            ({"n": 64, "algorithm": "vanilla"}, 2.0 * ratio_at_64),
            ({"n": 64, "algorithm": "a"}, 2.0),
        ]
        return make_result("X", {"n": [32, 64]}, rows)

    def test_pins_both_selectors_to_the_largest_axis_value(self):
        verdict = self.CLAIM.evaluate({"X": self._result(5.0)})
        assert verdict.passed
        assert verdict.observed == pytest.approx(5.0)
        assert "at n=64" in verdict.detail

    def test_below_band_fails(self):
        verdict = self.CLAIM.evaluate({"X": self._result(3.0)})
        assert not verdict.passed

    def test_censored_denominator_fails_explicitly(self):
        rows = [
            ({"n": 32, "algorithm": "vanilla"}, 10.0),
            ({"n": 32, "algorithm": "a"}, math.inf),
        ]
        result = make_result("X", {"n": [32]}, rows)
        verdict = self.CLAIM.evaluate({"X": result})
        assert not verdict.passed
        assert verdict.observed == "denominator censored"

    def test_ambiguous_selector_is_an_experiment_error(self):
        rows = [
            ({"n": 32, "algorithm": "vanilla", "rep": 0}, 1.0),
            ({"n": 32, "algorithm": "vanilla", "rep": 1}, 1.0),
            ({"n": 32, "algorithm": "a"}, 1.0),
        ]
        result = make_result("X", {"n": [32]}, rows)
        with pytest.raises(ExperimentError, match="matched 2 points"):
            self.CLAIM.evaluate({"X": result})


class TestBoundClaim:
    @staticmethod
    def _bound(params):
        return float(params["n"])

    def _claim(self, side, factor=1.0):
        return BoundClaim(
            claim_id="x-bound",
            experiment_id="EX",
            sweep="X",
            paper_ref="ref",
            statement="s",
            bound=self._bound,
            side=side,
            factor=factor,
        )

    def test_lower_bound_margin_is_the_worst_ratio(self):
        result = make_result(
            "X", {"n": [10, 20]},
            [({"n": 10}, 15.0), ({"n": 20}, 24.0)],
        )
        verdict = self._claim("lower").evaluate({"X": result})
        assert verdict.passed
        assert verdict.observed == pytest.approx(1.2)  # 24/20 < 15/10

    def test_single_violation_fails_and_is_counted(self):
        result = make_result(
            "X", {"n": [10, 20]},
            [({"n": 10}, 15.0), ({"n": 20}, 19.0)],
        )
        verdict = self._claim("lower").evaluate({"X": result})
        assert not verdict.passed
        assert "1 violate the bound" in verdict.detail

    def test_upper_bound_respects_factor(self):
        result = make_result("X", {"n": [10]}, [({"n": 10}, 35.0)])
        assert self._claim("upper", factor=4.0).evaluate({"X": result}).passed
        assert not self._claim("upper", factor=3.0).evaluate({"X": result}).passed

    def test_censored_point_fails_an_upper_bound(self):
        result = make_result("X", {"n": [10]}, [({"n": 10}, math.inf)])
        verdict = self._claim("upper", factor=4.0).evaluate({"X": result})
        assert not verdict.passed

    def test_bad_side_is_an_experiment_error(self):
        result = make_result("X", {"n": [10]}, [({"n": 10}, 1.0)])
        with pytest.raises(ExperimentError, match="side"):
            self._claim("sideways").evaluate({"X": result})


class TestSpreadClaim:
    CLAIM = SpreadClaim(
        claim_id="x-flat",
        experiment_id="EX",
        sweep="X",
        paper_ref="ref",
        statement="s",
        select={"algorithm": "a"},
        max_ratio=5.0,
    )

    def _result(self, estimates):
        rows = [
            ({"w": i, "algorithm": "a"}, est) for i, est in enumerate(estimates)
        ]
        return make_result("X", {"w": list(range(len(estimates)))}, rows)

    def test_flat_set_passes(self):
        verdict = self.CLAIM.evaluate({"X": self._result([2.0, 3.0, 4.0])})
        assert verdict.passed
        assert verdict.observed == pytest.approx(2.0)

    def test_wide_spread_fails(self):
        assert not self.CLAIM.evaluate({"X": self._result([1.0, 6.0])}).passed

    def test_censored_member_fails_the_insensitivity_claim(self):
        verdict = self.CLAIM.evaluate({"X": self._result([2.0, 3.0, math.inf])})
        assert not verdict.passed
        assert verdict.observed == "censored"

    def test_fewer_than_two_finite_points_is_underdetermined(self):
        verdict = self.CLAIM.evaluate({"X": self._result([math.inf])})
        assert not verdict.passed
        assert verdict.observed == "underdetermined"


class TestCensoringAndDominance:
    def test_censoring_pattern_match_and_mismatch(self):
        claim = CensoringClaim(
            claim_id="x-cens",
            experiment_id="EX",
            sweep="X",
            paper_ref="ref",
            statement="s",
            censored=({"config": "broken"},),
            finite=({"config": "healthy"},),
        )
        good = make_result(
            "X", {"config": ["broken", "healthy"]},
            [({"config": "broken"}, math.inf), ({"config": "healthy"}, 2.0)],
        )
        verdict = claim.evaluate({"X": good})
        assert verdict.passed
        assert verdict.observed == "2/2 as predicted"

        bad = make_result(
            "X", {"config": ["broken", "healthy"]},
            [({"config": "broken"}, 1.0), ({"config": "healthy"}, 2.0)],
        )
        verdict = claim.evaluate({"X": bad})
        assert not verdict.passed
        assert "converged (expected censored)" in verdict.detail

    def _dominance_claim(self, margin=1.0):
        return DominanceClaim(
            claim_id="x-dom",
            experiment_id="EX",
            sweep="X",
            paper_ref="ref",
            statement="s",
            axis="n",
            upper={"algorithm": "slow"},
            lower={"algorithm": "fast"},
            margin=margin,
        )

    def _dominance_result(self, fast_samples):
        rows = [
            ({"n": 16, "algorithm": "slow"}, 4.0, [3.0, 4.0, 5.0]),
            ({"n": 16, "algorithm": "fast"}, 1.0, fast_samples),
        ]
        return make_result("X", {"n": [16]}, rows)

    def test_orderwise_dominated_samples_pass(self):
        result = self._dominance_result([1.0, 2.0, 3.0])
        assert self._dominance_claim().evaluate({"X": result}).passed

    def test_one_crossed_order_statistic_fails(self):
        result = self._dominance_result([1.0, 2.0, 5.5])
        verdict = self._dominance_claim().evaluate({"X": result})
        assert not verdict.passed
        assert "1 violations" in verdict.detail

    def test_margin_absorbs_small_crossings(self):
        result = self._dominance_result([1.0, 2.0, 5.4])
        assert self._dominance_claim(margin=1.1).evaluate({"X": result}).passed

    def test_censored_upper_samples_dominate_anything(self):
        rows = [
            ({"n": 16, "algorithm": "slow"}, math.inf, [math.inf] * 3),
            ({"n": 16, "algorithm": "fast"}, 2.0, [1.0, 2.0, 3.0]),
        ]
        result = make_result("X", {"n": [16]}, rows)
        assert self._dominance_claim().evaluate({"X": result}).passed

    def test_diverged_samples_fail_outright(self):
        result = self._dominance_result([1.0, math.nan, 2.0])
        verdict = self._dominance_claim().evaluate({"X": result})
        assert not verdict.passed
        assert verdict.observed == "diverged"


class TestCatalogueApi:
    def test_catalogue_covers_the_papers_headline_claims(self):
        ids = {claim.claim_id for claim in CLAIMS}
        assert len(CLAIMS) >= 6
        assert {
            "E1-thm1-bound",
            "E2-thm2-envelope",
            "E3-vanilla-linear",
            "E3-speedup",
            "E6-dominance",
            "E13-lossy-slowdown",
        } <= ids

    def test_every_claim_sweep_has_a_registered_seed(self):
        assert required_sweeps(CLAIMS) == {
            sweep: CLAIM_SEEDS[sweep] for sweep in {c.sweep for c in CLAIMS}
        }

    def test_get_claims_narrows_and_validates(self):
        (claim,) = get_claims(["E3-speedup"])
        assert claim.claim_id == "E3-speedup"
        assert get_claims() is CLAIMS
        with pytest.raises(ExperimentError, match="unknown claim ids"):
            get_claims(["E3-speedup", "bogus"])

    def test_unregistered_sweep_seed_is_an_experiment_error(self):
        stray = ExponentClaim(
            claim_id="stray",
            experiment_id="EX",
            sweep="NOPE",
            paper_ref="r",
            statement="s",
            axis="n",
            low=0.0,
            high=1.0,
        )
        with pytest.raises(ExperimentError, match="no registered claim seed"):
            required_sweeps([stray])

    def test_bundle_and_table_reflect_the_verdicts(self):
        claims = get_claims(["E3-speedup"])
        rows = [
            ({"n": 32, "algorithm": "vanilla"}, 50.0),
            ({"n": 32, "algorithm": "algorithm_a"}, 5.0),
        ]
        results = {"E3": make_result("E3", {"n": [32]}, rows)}
        verdicts = evaluate_claims(claims, results)
        bundle = claims_bundle(claims, verdicts, scale="smoke")
        assert bundle["schema"] == CLAIMS_SCHEMA
        assert bundle["passed"] is True
        (entry,) = bundle["claims"]
        assert entry["claim_id"] == "E3-speedup"
        assert entry["paper_ref"] == claims[0].paper_ref
        assert entry["observed"] == pytest.approx(10.0)
        rendered = verdict_table(claims, verdicts).render()
        assert "PASS" in rendered and "E3-speedup" in rendered

        rows[0] = ({"n": 32, "algorithm": "vanilla"}, 6.0)
        results = {"E3": make_result("E3", {"n": [32]}, rows)}
        verdicts = evaluate_claims(claims, results)
        bundle = claims_bundle(claims, verdicts, scale="smoke")
        assert bundle["passed"] is False
        assert "FAIL" in verdict_table(claims, verdicts).render()

"""Unit tests for geometric networks, routing, and geographic gossip."""

from __future__ import annotations


import numpy as np
import pytest

from repro.algorithms.geographic import GeographicGossip
from repro.engine.simulator import simulate
from repro.errors import AlgorithmError, GraphError
from repro.graphs.geometric import (
    GeometricNetwork,
    bridged_geometric_pair,
    random_geometric_network,
)
from repro.graphs.graph import Graph


def line_network() -> GeometricNetwork:
    """Five nodes on a line, consecutive edges only."""
    graph = Graph(5, [(i, i + 1) for i in range(4)])
    positions = np.array([[0.1 * i, 0.5] for i in range(5)])
    return GeometricNetwork(graph=graph, positions=positions)


class TestGeometricNetwork:
    def test_position_shape_validated(self):
        with pytest.raises(GraphError, match="positions"):
            GeometricNetwork(graph=Graph(3, [(0, 1)]), positions=np.zeros((2, 2)))

    def test_distance(self):
        network = line_network()
        assert network.distance(0, 4) == pytest.approx(0.4)

    def test_greedy_route_follows_line(self):
        network = line_network()
        assert network.greedy_route(0, 4) == [0, 1, 2, 3, 4]
        assert network.greedy_route(4, 1) == [4, 3, 2, 1]
        assert network.greedy_route(2, 2) == [2]

    def test_greedy_route_detects_void(self):
        # A disconnected far node: routing toward it stalls immediately.
        graph = Graph(4, [(0, 1), (1, 2)])
        positions = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [0.9, 0.9]])
        network = GeometricNetwork(graph=graph, positions=positions)
        assert network.greedy_route(0, 3) is None

    def test_route_endpoint_validation(self):
        with pytest.raises(GraphError):
            line_network().greedy_route(0, 99)

    def test_random_network_connected_and_sized(self):
        network = random_geometric_network(60, seed=1)
        assert network.graph.n_vertices == 60
        assert network.graph.is_connected()
        assert network.positions.shape == (60, 2)
        assert network.positions.min() >= 0 and network.positions.max() <= 1

    def test_random_network_radius_validation(self):
        with pytest.raises(GraphError):
            random_geometric_network(10, radius=-0.1)
        with pytest.raises(GraphError):
            random_geometric_network(1)

    def test_routes_succeed_on_dense_network(self):
        network = random_geometric_network(80, seed=2)
        rng = np.random.default_rng(0)
        successes = 0
        for _ in range(50):
            s, t = rng.integers(80, size=2)
            if network.greedy_route(int(s), int(t)) is not None:
                successes += 1
        assert successes >= 45  # voids must be rare above the threshold

    def test_bridged_pair_structure(self):
        network, side = bridged_geometric_pair(24, seed=3)
        assert network.graph.n_vertices == 48
        # Exactly one cross-strip edge.
        crossing = sum(
            1 for u, v in network.graph.edges if side[u] != side[v]
        )
        assert crossing == 1
        with pytest.raises(GraphError):
            bridged_geometric_pair(2)


class TestGeographicGossip:
    def test_local_mode_is_vanilla(self):
        network = line_network()
        algo = GeographicGossip(network, initiation_probability=0.0)
        algo.setup(network.graph, np.zeros(5), np.random.default_rng(0))
        values = [4.0, 0.0, 0.0, 0.0, 0.0]
        result = algo.on_tick(0, 0, 1, 1.0, 1, values)
        assert result == (2.0, 2.0)
        assert algo.message_count == 1

    def test_long_range_exchange_updates_remote_pair(self):
        network = line_network()
        algo = GeographicGossip(network, initiation_probability=1.0)
        rng = np.random.default_rng(5)
        algo.setup(network.graph, np.zeros(5), rng)
        values = [10.0, 0.0, 0.0, 0.0, -10.0]
        # Repeat ticks of the first edge until a non-trivial exchange hits
        # a remote target (randomized initiator/target).
        for count in range(1, 60):
            result = algo.on_tick(0, 0, 1, float(count), count, values)
            if isinstance(result, list):
                for vertex, value in result:
                    values[vertex] = value
                break
        assert isinstance(result, list)
        assert algo.long_range_exchanges == 1
        assert algo.message_count > 1
        assert sum(values) == pytest.approx(0.0, abs=1e-9)

    def test_conserves_sum_in_simulation(self):
        network = random_geometric_network(40, seed=4)
        x0 = np.arange(40, dtype=float)
        algo = GeographicGossip(network, initiation_probability=0.5)
        result = simulate(network.graph, algo, x0, seed=1,
                          target_ratio=1e-8, max_events=2_000_000)
        assert result.stopped_by == "target_ratio"
        assert result.sum_drift < 1e-6
        assert np.allclose(result.values, x0.mean(), atol=3e-2)

    def test_wrong_graph_rejected(self):
        network = line_network()
        algo = GeographicGossip(network)
        with pytest.raises(AlgorithmError, match="different network"):
            algo.setup(Graph(3, [(0, 1)]), np.zeros(3), np.random.default_rng(0))

    def test_probability_validated(self):
        with pytest.raises(AlgorithmError):
            GeographicGossip(line_network(), initiation_probability=1.5)

    def test_describe_counts(self):
        algo = GeographicGossip(line_network(), initiation_probability=0.2)
        info = algo.describe()
        assert info["initiation_probability"] == 0.2
        assert info["message_count"] == 0

"""Unit tests for the algorithm update rules (driven tick by tick)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.convex import ConvexGossip, RandomConvexGossip
from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.push_sum import PushSumGossip
from repro.algorithms.registry import (
    available_algorithms,
    make_algorithm,
    register_algorithm,
)
from repro.algorithms.second_order import AsyncSecondOrderGossip
from repro.algorithms.two_timescale import TwoTimescaleGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.errors import AlgorithmError
from repro.graphs.composites import two_cliques


def tick(algorithm, graph, values, edge_id, *, count=1, time=1.0):
    """Drive one tick and apply the update in place; returns the result."""
    u, v = graph.edge_endpoints(edge_id)
    result = algorithm.on_tick(edge_id, u, v, time, count, values)
    if result is not None:
        values[u], values[v] = result
    return result


class TestVanilla:
    def test_pairwise_mean(self, small_path):
        algo = VanillaGossip()
        algo.setup(small_path, np.zeros(4), np.random.default_rng(0))
        values = [4.0, 0.0, 2.0, 6.0]
        tick(algo, small_path, values, small_path.edge_id(0, 1))
        assert values[0] == values[1] == 2.0
        assert values[2] == 2.0 and values[3] == 6.0

    def test_declared_capabilities(self):
        algo = VanillaGossip()
        assert algo.conserves_sum and algo.monotone_variance


class TestConvex:
    def test_alpha_mixing(self, small_path):
        algo = ConvexGossip(0.75)
        algo.setup(small_path, np.zeros(4), np.random.default_rng(0))
        values = [4.0, 0.0, 0.0, 0.0]
        tick(algo, small_path, values, small_path.edge_id(0, 1))
        assert values[0] == pytest.approx(3.0)
        assert values[1] == pytest.approx(1.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ConvexGossip(1.5)

    def test_alpha_one_is_identity(self, small_path):
        algo = ConvexGossip(1.0)
        algo.setup(small_path, np.zeros(4), np.random.default_rng(0))
        values = [4.0, 0.0, 0.0, 0.0]
        tick(algo, small_path, values, 0)
        assert values == [4.0, 0.0, 0.0, 0.0]

    def test_random_convex_stays_in_hull(self, small_path):
        algo = RandomConvexGossip()
        algo.setup(small_path, np.zeros(4), np.random.default_rng(1))
        for _ in range(50):
            values = [1.0, -1.0, 0.0, 0.0]
            tick(algo, small_path, values, 0)
            assert -1.0 - 1e-12 <= values[0] <= 1.0 + 1e-12
            assert values[0] + values[1] == pytest.approx(0.0)

    def test_random_convex_bounds_validated(self):
        with pytest.raises(ValueError):
            RandomConvexGossip(0.8, 0.2)


class TestAlgorithmA:
    def test_internal_edges_average(self, medium_dumbbell):
        partition = medium_dumbbell.partition
        algo = NonConvexSparseCutGossip(partition, epoch_length=1)
        graph = medium_dumbbell.graph
        algo.setup(graph, np.zeros(32), np.random.default_rng(0))
        values = [float(i) for i in range(32)]
        internal = int(partition.internal_edge_ids(0)[0])
        u, v = graph.edge_endpoints(internal)
        expected = 0.5 * (values[u] + values[v])
        tick(algo, graph, values, internal)
        assert values[u] == values[v] == pytest.approx(expected)

    def test_non_designated_cut_edge_silent(self):
        pair = two_cliques(6, 6, n_bridges=3)
        algo = NonConvexSparseCutGossip(pair.partition, epoch_length=1)
        graph = pair.graph
        algo.setup(graph, np.zeros(12), np.random.default_rng(0))
        other_cut = [
            int(e) for e in pair.partition.cut_edge_ids
            if int(e) != algo.designated_edge
        ][0]
        values = [float(i) for i in range(12)]
        before = list(values)
        result = tick(algo, graph, values, other_cut)
        assert result is None and values == before

    def test_swap_fires_on_epoch_multiples(self, medium_dumbbell):
        algo = NonConvexSparseCutGossip(medium_dumbbell.partition, epoch_length=3)
        graph = medium_dumbbell.graph
        algo.setup(graph, np.zeros(32), np.random.default_rng(0))
        values = [1.0 if i < 16 else -1.0 for i in range(32)]
        edge = algo.designated_edge
        assert tick(algo, graph, values, edge, count=1) is None
        assert tick(algo, graph, values, edge, count=2) is None
        assert tick(algo, graph, values, edge, count=3) is not None
        assert algo.swap_count == 1

    def test_exact_gain_zeroes_imbalance_on_mixed_state(self):
        pair = two_cliques(4, 12, n_bridges=1)
        partition = pair.partition
        algo = NonConvexSparseCutGossip(partition, epoch_length=1, gain="exact")
        graph = pair.graph
        algo.setup(graph, np.zeros(16), np.random.default_rng(0))
        # Perfectly mixed sides: mu1 = 3, mu2 = -1 (global mean 0).
        values = np.where(partition.side == 0, 3.0, -1.0).tolist()
        tick(algo, graph, values, algo.designated_edge)
        array = np.asarray(values)
        mu1 = array[partition.vertices_1].mean()
        mu2 = array[partition.vertices_2].mean()
        assert mu1 == pytest.approx(mu2)
        assert sum(values) == pytest.approx(0.0, abs=1e-9)

    def test_paper_gain_flips_balanced_imbalance(self, medium_dumbbell):
        partition = medium_dumbbell.partition
        algo = NonConvexSparseCutGossip(partition, epoch_length=1, gain="paper")
        graph = medium_dumbbell.graph
        algo.setup(graph, np.zeros(32), np.random.default_rng(0))
        values = np.where(partition.side == 0, 1.0, -1.0).tolist()
        tick(algo, graph, values, algo.designated_edge)
        array = np.asarray(values)
        mu1 = array[partition.vertices_1].mean()
        mu2 = array[partition.vertices_2].mean()
        # Balanced halves: the means exchange exactly (delta flips sign).
        assert mu1 == pytest.approx(-1.0)
        assert mu2 == pytest.approx(1.0)

    def test_oracle_means_ignores_endpoint_noise(self, medium_dumbbell):
        partition = medium_dumbbell.partition
        algo = NonConvexSparseCutGossip(
            partition, epoch_length=1, gain="exact", oracle_means=True
        )
        graph = medium_dumbbell.graph
        algo.setup(graph, np.zeros(32), np.random.default_rng(0))
        values = np.where(partition.side == 0, 2.0, -2.0)
        # Perturb the designated endpoints; the oracle swap must still
        # equalize the side means exactly.
        u, v = graph.edge_endpoints(algo.designated_edge)
        values = values.astype(float)
        values[u] += 0.5
        values[v] -= 0.25
        values = values.tolist()
        tick(algo, graph, values, algo.designated_edge)
        array = np.asarray(values)
        mu1 = array[partition.vertices_1].mean()
        mu2 = array[partition.vertices_2].mean()
        assert mu1 == pytest.approx(mu2)

    def test_gain_values(self, medium_dumbbell):
        partition = medium_dumbbell.partition
        assert NonConvexSparseCutGossip(
            partition, epoch_length=1, gain="exact"
        ).gain == pytest.approx(16 * 16 / 32)
        assert NonConvexSparseCutGossip(
            partition, epoch_length=1, gain="paper"
        ).gain == 16.0
        assert NonConvexSparseCutGossip(
            partition, epoch_length=1, gain=2.5
        ).gain == 2.5

    def test_validation(self, medium_dumbbell):
        partition = medium_dumbbell.partition
        with pytest.raises(AlgorithmError):
            NonConvexSparseCutGossip(partition, epoch_length=0)
        with pytest.raises(AlgorithmError):
            NonConvexSparseCutGossip(partition, epoch_length=1, gain=0)
        with pytest.raises(AlgorithmError):
            NonConvexSparseCutGossip(partition, epoch_length=1, gain="typo")
        internal = int(partition.internal_edge_ids(0)[0])
        with pytest.raises(AlgorithmError, match="not a cut edge"):
            NonConvexSparseCutGossip(
                partition, epoch_length=1, designated_edge=internal
            )

    def test_wrong_graph_rejected_at_setup(self, medium_dumbbell, k6):
        algo = NonConvexSparseCutGossip(medium_dumbbell.partition, epoch_length=1)
        with pytest.raises(AlgorithmError, match="different graph"):
            algo.setup(k6, np.zeros(6), np.random.default_rng(0))

    def test_describe_contents(self, medium_dumbbell):
        algo = NonConvexSparseCutGossip(medium_dumbbell.partition, epoch_length=4)
        info = algo.describe()
        assert info["epoch_length"] == 4
        assert info["n1"] == 16


class TestTwoTimescale:
    def test_cut_edges_use_slow_step(self, medium_dumbbell):
        partition = medium_dumbbell.partition
        algo = TwoTimescaleGossip(partition, slow_step=0.1)
        graph = medium_dumbbell.graph
        algo.setup(graph, np.zeros(32), np.random.default_rng(0))
        cut_edge = int(partition.cut_edge_ids[0])
        u, v = graph.edge_endpoints(cut_edge)
        values = [0.0] * 32
        values[u], values[v] = 1.0, -1.0
        tick(algo, graph, values, cut_edge)
        assert values[u] == pytest.approx(0.8)
        assert values[v] == pytest.approx(-0.8)

    def test_harmonic_schedule_decays(self, medium_dumbbell):
        algo = TwoTimescaleGossip(
            medium_dumbbell.partition, slow_step=0.4, schedule="harmonic", tau=1.0
        )
        graph = medium_dumbbell.graph
        algo.setup(graph, np.zeros(32), np.random.default_rng(0))
        cut_edge = int(medium_dumbbell.partition.cut_edge_ids[0])
        u, v = graph.edge_endpoints(cut_edge)
        deltas = []
        for _ in range(3):
            values = [0.0] * 32
            values[u], values[v] = 1.0, -1.0
            tick(algo, graph, values, cut_edge)
            deltas.append(1.0 - values[u])
        assert deltas[0] > deltas[1] > deltas[2]

    def test_validation(self, medium_dumbbell):
        with pytest.raises(AlgorithmError):
            TwoTimescaleGossip(medium_dumbbell.partition, slow_step=0.9)
        with pytest.raises(AlgorithmError):
            TwoTimescaleGossip(medium_dumbbell.partition, schedule="exp")
        with pytest.raises(AlgorithmError):
            TwoTimescaleGossip(medium_dumbbell.partition, tau=-1)


class TestPushSum:
    def test_mass_conserved(self, k6):
        algo = PushSumGossip()
        values = np.arange(6, dtype=float)
        algo.setup(k6, values, np.random.default_rng(3))
        working = values.tolist()
        for edge_id in range(k6.n_edges):
            tick(algo, k6, working, edge_id)
        assert algo.total_mass() == pytest.approx(values.sum())

    def test_estimates_move_toward_average(self, k6):
        algo = PushSumGossip()
        values = np.array([6.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        algo.setup(k6, values, np.random.default_rng(4))
        working = values.tolist()
        rng = np.random.default_rng(5)
        for step in range(400):
            tick(algo, k6, working, int(rng.integers(k6.n_edges)), count=step + 1)
        assert np.allclose(working, 1.0, atol=0.2)

    def test_total_mass_requires_setup(self):
        with pytest.raises(RuntimeError):
            PushSumGossip().total_mass()


class TestAsyncSecondOrder:
    def test_beta_one_is_vanilla(self, small_path):
        algo = AsyncSecondOrderGossip(1.0)
        algo.setup(small_path, np.array([4.0, 0.0, 0.0, 0.0]), np.random.default_rng(0))
        values = [4.0, 0.0, 0.0, 0.0]
        tick(algo, small_path, values, small_path.edge_id(0, 1))
        assert values[0] == values[1] == pytest.approx(2.0)

    def test_momentum_extrapolates(self, small_path):
        algo = AsyncSecondOrderGossip(1.5)
        algo.setup(small_path, np.array([4.0, 0.0, 0.0, 0.0]), np.random.default_rng(0))
        values = [4.0, 0.0, 0.0, 0.0]
        tick(algo, small_path, values, small_path.edge_id(0, 1))
        # mean = 2; new_u = 1.5*2 - 0.5*4 = 1; new_v = 1.5*2 - 0.5*0 = 3.
        assert values[0] == pytest.approx(1.0)
        assert values[1] == pytest.approx(3.0)

    def test_beta_validation(self):
        with pytest.raises(AlgorithmError):
            AsyncSecondOrderGossip(2.5)


class TestRegistry:
    def test_known_names(self):
        names = available_algorithms()
        assert "vanilla" in names and "algorithm-a" in names

    def test_make_with_kwargs(self, medium_dumbbell):
        algo = make_algorithm(
            "algorithm-a", partition=medium_dumbbell.partition, epoch_length=2
        )
        assert isinstance(algo, NonConvexSparseCutGossip)

    def test_unknown_name(self):
        with pytest.raises(AlgorithmError, match="unknown algorithm"):
            make_algorithm("nope")

    def test_register_custom_and_overwrite_guard(self):
        register_algorithm("test-custom", VanillaGossip, overwrite=True)
        assert isinstance(make_algorithm("test-custom"), VanillaGossip)
        with pytest.raises(AlgorithmError, match="already registered"):
            register_algorithm("test-custom", VanillaGossip)

    def test_setup_shape_validation(self, k6):
        algo = VanillaGossip()
        with pytest.raises(ValueError):
            algo.setup(k6, np.zeros(3), np.random.default_rng(0))

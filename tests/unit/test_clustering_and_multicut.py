"""Unit tests for k-way clustering and the multi-cut extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multi_cut import MultiClusterAveraging, MultiCutGossip
from repro.errors import AlgorithmError, PartitionError
from repro.graphs.clustering import (
    ClusterPartition,
    chain_of_cliques,
    spectral_clusters,
)
from repro.graphs.graph import Graph
from repro.graphs.topologies import complete_graph, path_graph


class TestClusterPartition:
    def test_chain_structure(self):
        graph, clusters = chain_of_cliques(5, 3)
        assert graph.n_vertices == 15
        assert clusters.k == 3
        assert clusters.total_cut_size == 2
        assert clusters.adjacent_cluster_pairs == [(0, 1), (1, 2)]
        assert clusters.quotient_is_connected()
        assert all(clusters.clusters_connected())

    def test_edge_accounting(self):
        graph, clusters = chain_of_cliques(4, 3)
        internal = sum(
            len(clusters.internal_edge_ids(c)) for c in range(clusters.k)
        )
        assert internal + clusters.total_cut_size == graph.n_edges

    def test_cut_edge_ids_symmetric_and_empty(self):
        graph, clusters = chain_of_cliques(4, 3)
        assert np.array_equal(
            clusters.cut_edge_ids(0, 1), clusters.cut_edge_ids(1, 0)
        )
        assert len(clusters.cut_edge_ids(0, 2)) == 0
        with pytest.raises(PartitionError):
            clusters.cut_edge_ids(0, 0)

    def test_label_validation(self):
        graph = complete_graph(4)
        with pytest.raises(PartitionError, match="length"):
            ClusterPartition(graph, [0, 1])
        with pytest.raises(PartitionError, match="at least two"):
            ClusterPartition(graph, [0, 0, 0, 0])
        with pytest.raises(PartitionError, match="0..k-1"):
            ClusterPartition(graph, [0, 2, 2, 0])

    def test_require_connected_clusters(self):
        # Path 0-1-2-3 with clusters {0,3} and {1,2}: first is disconnected.
        clusters = ClusterPartition(path_graph(4), [0, 1, 1, 0])
        with pytest.raises(PartitionError, match="not internally connected"):
            clusters.require_connected_clusters()

    def test_members_and_sizes(self):
        _, clusters = chain_of_cliques(4, 2)
        assert clusters.members(0).tolist() == [0, 1, 2, 3]
        assert clusters.cluster_size(1) == 4
        with pytest.raises(PartitionError):
            clusters.members(5)


class TestSpectralClusters:
    def test_recovers_planted_chain(self):
        graph, planted = chain_of_cliques(8, 3)
        detected = spectral_clusters(graph, 3)
        # Same partition up to label order: compare as sets of frozensets.
        planted_sets = {
            frozenset(planted.members(c).tolist()) for c in range(3)
        }
        detected_sets = {
            frozenset(detected.members(c).tolist()) for c in range(3)
        }
        assert planted_sets == detected_sets

    def test_k_validation(self):
        graph, _ = chain_of_cliques(4, 2)
        with pytest.raises(PartitionError):
            spectral_clusters(graph, 1)
        with pytest.raises(PartitionError):
            spectral_clusters(graph, 99)


class TestMultiCutGossip:
    def test_designated_edges_one_per_cut(self):
        _, clusters = chain_of_cliques(6, 4)
        algo = MultiCutGossip(clusters, epoch_lengths=2)
        assert len(algo.designated_edges) == 3

    def test_internal_edges_average(self):
        graph, clusters = chain_of_cliques(4, 2)
        algo = MultiCutGossip(clusters, epoch_lengths=1)
        algo.setup(graph, np.zeros(8), np.random.default_rng(0))
        values = [float(i) for i in range(8)]
        internal = int(clusters.internal_edge_ids(0)[0])
        u, v = graph.edge_endpoints(internal)
        expected = 0.5 * (values[u] + values[v])
        result = algo.on_tick(internal, u, v, 1.0, 1, values)
        assert result == (expected, expected)

    def test_swap_equalizes_pair_means(self):
        graph, clusters = chain_of_cliques(5, 2)
        algo = MultiCutGossip(clusters, epoch_lengths=1)
        algo.setup(graph, np.zeros(10), np.random.default_rng(0))
        values = np.where(clusters.labels == 0, 3.0, -3.0).astype(float).tolist()
        edge = algo.designated_edges[0]
        u, v = graph.edge_endpoints(edge)
        result = algo.on_tick(edge, u, v, 1.0, 1, values)
        values[u], values[v] = result
        array = np.asarray(values)
        mu0 = array[clusters.members(0)].mean()
        mu1 = array[clusters.members(1)].mean()
        assert mu0 == pytest.approx(mu1)
        assert algo.swap_count(edge) == 1

    def test_swap_respects_per_cut_epoch(self):
        graph, clusters = chain_of_cliques(4, 2)
        algo = MultiCutGossip(clusters, epoch_lengths={(0, 1): 3})
        algo.setup(graph, np.zeros(8), np.random.default_rng(0))
        values = np.where(clusters.labels == 0, 1.0, -1.0).astype(float).tolist()
        edge = algo.designated_edges[0]
        u, v = graph.edge_endpoints(edge)
        assert algo.on_tick(edge, u, v, 1.0, 1, values) is None
        assert algo.on_tick(edge, u, v, 2.0, 2, values) is None
        assert algo.on_tick(edge, u, v, 3.0, 3, values) is not None

    def test_validation(self):
        graph, clusters = chain_of_cliques(4, 3)
        with pytest.raises(AlgorithmError, match="missing epoch"):
            MultiCutGossip(clusters, epoch_lengths={(0, 1): 2})
        with pytest.raises(AlgorithmError, match=">= 1"):
            MultiCutGossip(clusters, epoch_lengths=0)
        with pytest.raises(AlgorithmError, match="not a designated"):
            algo = MultiCutGossip(clusters, epoch_lengths=1)
            algo.swap_count(9999)

    def test_disconnected_quotient_rejected(self):
        # Two cliques with NO bridge: quotient disconnected.
        import itertools

        edges = list(itertools.combinations(range(4), 2))
        edges += [(a + 4, b + 4) for a, b in itertools.combinations(range(4), 2)]
        graph = Graph(8, edges)
        clusters = ClusterPartition(graph, [0, 0, 0, 0, 1, 1, 1, 1])
        with pytest.raises(AlgorithmError, match="disconnected"):
            MultiCutGossip(clusters, epoch_lengths=1)


class TestMultiClusterAveraging:
    def test_end_to_end_convergence(self):
        graph, clusters = chain_of_cliques(8, 3)
        mca = MultiClusterAveraging(graph, clusters=clusters)
        x0 = np.where(clusters.labels == 0, 2.0, -1.0)
        result = mca.run(x0, seed=0, target_ratio=1e-8, max_time=20_000.0)
        assert result.stopped_by == "target_ratio"
        assert np.allclose(result.values, x0.mean(), atol=1e-3)
        assert result.sum_drift < 1e-8

    def test_auto_detection_path(self):
        graph, _ = chain_of_cliques(8, 3)
        mca = MultiClusterAveraging(graph, n_clusters=3)
        assert mca.clusters.k == 3
        assert len(mca.epoch_lengths()) == 2

    def test_summary(self):
        graph, clusters = chain_of_cliques(6, 3)
        mca = MultiClusterAveraging(graph, clusters=clusters)
        summary = mca.summary()
        assert summary["k"] == 3
        assert summary["total_cut_size"] == 2
        assert len(summary["tvan"]) == 3

    def test_validation(self):
        graph, clusters = chain_of_cliques(4, 2)
        with pytest.raises(AlgorithmError, match="provide either"):
            MultiClusterAveraging(graph)
        with pytest.raises(AlgorithmError, match="epoch_constant"):
            MultiClusterAveraging(graph, clusters=clusters, epoch_constant=0)
        other_graph, other_clusters = chain_of_cliques(5, 2)
        with pytest.raises(AlgorithmError, match="different graph"):
            MultiClusterAveraging(graph, clusters=other_clusters)

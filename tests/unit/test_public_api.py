"""Sanity tests of the top-level public API surface and its doctests."""

from __future__ import annotations

import doctest
import importlib

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_path(self):
        pair = repro.dumbbell_graph(32)
        sca = repro.SparseCutAveraging(pair.graph, partition=pair.partition)
        result = sca.run([float(i) for i in range(32)], seed=0,
                         target_ratio=1e-6)
        assert result.values.mean() == pytest.approx(15.5)

    def test_single_vertex_side_is_handled(self):
        """Degenerate-but-legal: a one-node side of the cut (Tvan = 0)."""
        pair = repro.two_cliques(1, 8, n_bridges=1)
        sca = repro.SparseCutAveraging(pair.graph, partition=pair.partition)
        assert sca.epoch_length() >= 1
        x0 = np.arange(9, dtype=float)
        result = sca.run(x0, seed=1, target_ratio=1e-6, max_time=500.0)
        assert result.stopped_by == "target_ratio"
        assert np.allclose(result.values, x0.mean(), atol=1e-2)

    def test_available_algorithms_cover_the_paper(self):
        names = repro.available_algorithms()
        for required in ("vanilla", "algorithm-a", "algorithm-a-resilient",
                         "two-timescale", "push-sum", "geographic"):
            assert required in names


@pytest.mark.parametrize(
    "module_name",
    [
        "repro",
        "repro.util.tables",
        "repro.util.timer",
        "repro.util.rng",
        "repro.core.sparse_cut_averaging",
        "repro.algorithms.registry",
    ],
)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"

"""Unit tests for failure-injected clocks and the resilient Algorithm A."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.resilient import ResilientSparseCutGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.poisson import PoissonEdgeClocks
from repro.clocks.schedule import ScriptedSchedule
from repro.clocks.unreliable import FailingEdgeClocks, LossyClocks
from repro.engine.simulator import Simulator, simulate
from repro.errors import AlgorithmError
from repro.experiments.workloads import cut_aligned
from repro.graphs.composites import two_cliques


class TestLossyClocks:
    def test_drop_rate_statistics(self):
        inner = PoissonEdgeClocks(4, seed=0)
        lossy = LossyClocks(inner, 0.5, seed=1)
        total = 0
        for _ in range(20):
            times, _ = lossy.next_batch(1000)
            total += len(times)
        assert total == pytest.approx(10_000, rel=0.05)

    def test_zero_loss_is_transparent(self):
        inner = PoissonEdgeClocks(4, seed=0)
        reference = PoissonEdgeClocks(4, seed=0)
        lossy = LossyClocks(inner, 0.0, seed=1)
        times, edges = lossy.next_batch(100)
        ref_times, ref_edges = reference.next_batch(100)
        assert np.array_equal(times, ref_times)
        assert np.array_equal(edges, ref_edges)

    def test_per_edge_probabilities(self):
        inner = PoissonEdgeClocks(2, seed=0)
        lossy = LossyClocks(inner, [0.0, 0.9], seed=2)
        kept = np.zeros(2)
        for _ in range(30):
            _, edges = lossy.next_batch(1000)
            kept += np.bincount(edges, minlength=2)
        # Edge 0 keeps everything (~15k), edge 1 keeps ~10%.
        assert kept[0] == pytest.approx(15_000, rel=0.1)
        assert kept[1] == pytest.approx(1_500, rel=0.3)

    def test_validation(self):
        inner = PoissonEdgeClocks(2, seed=0)
        with pytest.raises(ValueError):
            LossyClocks(inner, 1.0)
        with pytest.raises(ValueError):
            LossyClocks(inner, -0.1)

    def test_all_dropped_batch_is_retried_not_exhausted(self):
        """Regression: a small batch whose every tick was dropped came
        back empty, which the simulator reads as clock exhaustion."""
        inner = PoissonEdgeClocks(2, seed=0)
        lossy = LossyClocks(inner, 0.95, seed=1)
        for _ in range(50):
            times, _ = lossy.next_batch(1)  # worst case: 1-tick batches
            assert len(times) >= 1

    def test_lossy_vanilla_still_converges(self, k6):
        clock = LossyClocks(PoissonEdgeClocks(k6.n_edges, seed=3), 0.4, seed=4)
        result = simulate(k6, VanillaGossip(), [float(i) for i in range(6)],
                          clock=clock, seed=3, target_ratio=1e-8)
        assert result.stopped_by == "target_ratio"


class TestFailingEdgeClocks:
    def test_scripted_death_stops_edge(self):
        inner = ScriptedSchedule(
            [(1.0, 0), (2.0, 1), (3.0, 0), (4.0, 1)], n_edges=2
        )
        failing = FailingEdgeClocks(inner, {0: 2.5})
        times, edges = failing.next_batch(10)
        assert list(zip(times.tolist(), edges.tolist())) == [
            (1.0, 0), (2.0, 1), (4.0, 1)
        ]

    def test_all_edges_dead_reports_exhaustion(self):
        """Once every edge is past its death time the clock must report
        exhaustion rather than redraw forever."""
        inner = PoissonEdgeClocks(3, seed=9)
        failing = FailingEdgeClocks(inner, {0: 0.0, 1: 0.0, 2: 0.0})
        times, edges = failing.next_batch(100)
        assert len(times) == 0 and len(edges) == 0

    def test_batch_on_only_dead_edges_is_retried(self):
        """A batch landing entirely on dead edges is retried while a
        live edge remains (an empty return would end the run early)."""
        inner = PoissonEdgeClocks(4, seed=10)
        failing = FailingEdgeClocks(inner, {0: 0.0, 1: 0.0, 2: 0.0})
        for _ in range(50):
            times, edges = failing.next_batch(1)
            assert len(times) == 1
            assert edges[0] == 3  # the lone immortal edge

    def test_random_lifetimes(self):
        inner = PoissonEdgeClocks(10, seed=5)
        failing = FailingEdgeClocks(inner, 0.5, seed=6)
        deaths = failing.death_times
        assert deaths.shape == (10,)
        assert np.all(deaths > 0)

    def test_validation(self):
        inner = PoissonEdgeClocks(3, seed=0)
        with pytest.raises(ValueError):
            FailingEdgeClocks(inner, {5: 1.0})
        with pytest.raises(ValueError):
            FailingEdgeClocks(inner, {0: -1.0})
        with pytest.raises(ValueError):
            FailingEdgeClocks(inner, 0.0)

    def test_lossy_factory_is_exact_thinning_of_plain_clock(self):
        """The factory's surviving ticks must be a strict subset of what
        an unwrapped clock emits under the same stream, across batch
        boundaries (the common-random-numbers pairing E13 leans on)."""
        from repro.clocks.unreliable import LossyPoissonClockFactory

        lossy = LossyPoissonClockFactory(10, 0.4)(np.random.default_rng(3))
        plain = PoissonEdgeClocks(10, seed=np.random.default_rng(3))
        survived = np.concatenate(
            [lossy.next_batch(100)[0] for _ in range(5)]
        )
        emitted = np.concatenate(
            [plain.next_batch(100)[0] for _ in range(5)]
        )
        assert 0 < len(survived) < len(emitted)
        assert np.isin(survived, emitted).all()

    def test_seed_with_scripted_deaths_rejected(self):
        """Regression: a seed alongside a scripted mapping was silently
        ignored; the combination is meaningless and now raises."""
        inner = PoissonEdgeClocks(3, seed=0)
        with pytest.raises(ValueError, match="seed is meaningless"):
            FailingEdgeClocks(inner, {0: 1.0}, seed=7)
        # Explicit seed=None stays legal for scripted deaths.
        assert FailingEdgeClocks(inner, {0: 1.0}, seed=None).n_edges == 3


@pytest.fixture
def bridged_pair_3():
    return two_cliques(12, 12, n_bridges=3)


class TestResilientAlgorithmA:
    def test_behaves_like_plain_a_without_failures(self, bridged_pair_3):
        pair = bridged_pair_3
        x0 = cut_aligned(pair.partition)
        plain = simulate(
            pair.graph,
            NonConvexSparseCutGossip(pair.partition, epoch_length=4),
            x0, seed=7, target_ratio=1e-8, max_time=500.0,
        )
        resilient_algo = ResilientSparseCutGossip(
            pair.partition, epoch_length=4
        )
        resilient = simulate(
            pair.graph, resilient_algo, x0, seed=7,
            target_ratio=1e-8, max_time=500.0,
        )
        assert plain.stopped_by == resilient.stopped_by == "target_ratio"
        assert resilient_algo.takeover_count == 0
        # Identical clocks, identical updates => identical trajectories.
        assert np.allclose(plain.values, resilient.values)

    def test_plain_a_stalls_when_designated_edge_dies(self, bridged_pair_3):
        pair = bridged_pair_3
        x0 = cut_aligned(pair.partition)
        algo = NonConvexSparseCutGossip(pair.partition, epoch_length=4)
        clock = FailingEdgeClocks(
            PoissonEdgeClocks(pair.graph.n_edges, seed=8),
            {algo.designated_edge: 1.0},
        )
        result = Simulator(pair.graph, algo, x0, clock=clock, seed=8).run(
            target_ratio=1e-6, max_time=300.0
        )
        assert result.stopped_by == "max_time"
        assert result.variance_ratio > 0.5  # the imbalance never drained

    def test_resilient_fails_over_and_converges(self, bridged_pair_3):
        pair = bridged_pair_3
        x0 = cut_aligned(pair.partition)
        algo = ResilientSparseCutGossip(pair.partition, epoch_length=4)
        original = algo.designated_edge
        clock = FailingEdgeClocks(
            PoissonEdgeClocks(pair.graph.n_edges, seed=9),
            {original: 1.0},
        )
        result = Simulator(pair.graph, algo, x0, clock=clock, seed=9).run(
            target_ratio=1e-6, max_time=300.0
        )
        assert result.stopped_by == "target_ratio"
        assert algo.takeover_count >= 1
        assert algo.designated_edge != original

    def test_setup_resets_failover_state(self, bridged_pair_3):
        pair = bridged_pair_3
        algo = ResilientSparseCutGossip(pair.partition, epoch_length=4)
        original = algo.designated_edge
        clock = FailingEdgeClocks(
            PoissonEdgeClocks(pair.graph.n_edges, seed=10),
            {original: 1.0},
        )
        x0 = cut_aligned(pair.partition)
        Simulator(pair.graph, algo, x0, clock=clock, seed=10).run(
            target_ratio=1e-6, max_time=300.0
        )
        assert algo.designated_edge != original
        algo.setup(pair.graph, x0, np.random.default_rng(0))
        assert algo.designated_edge == original
        assert algo.takeover_count == 0

    def test_timeout_validation(self, bridged_pair_3):
        with pytest.raises(AlgorithmError):
            ResilientSparseCutGossip(
                bridged_pair_3.partition, epoch_length=4, silence_timeout=0.0
            )

    def test_describe_reports_failover_state(self, bridged_pair_3):
        algo = ResilientSparseCutGossip(
            bridged_pair_3.partition, epoch_length=4
        )
        info = algo.describe()
        assert info["takeover_count"] == 0
        assert info["silence_timeout"] == 12.0

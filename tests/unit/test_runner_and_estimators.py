"""Unit tests for the Monte-Carlo runner and averaging-time estimators."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.engine.averaging_time import (
    PAPER_CONFIDENCE_QUANTILE,
    PAPER_VARIANCE_THRESHOLD,
    epsilon_averaging_time,
    estimate_averaging_time,
)
from repro.engine.metrics import consensus_error, variance_of, variance_ratio
from repro.engine.runner import MonteCarloRunner, ReplicateSummary
from repro.errors import SimulationError
from repro.graphs.topologies import complete_graph


class TestMonteCarloRunner:
    def test_replicates_differ_but_are_reproducible(self, k6):
        runner = MonteCarloRunner(k6, VanillaGossip,
                                  [float(i) for i in range(6)], seed=0)
        results = runner.run(3, max_events=200)
        durations = [r.duration for r in results]
        assert len(set(durations)) == 3  # independent clock streams
        repeat = MonteCarloRunner(k6, VanillaGossip,
                                  [float(i) for i in range(6)], seed=0)
        again = repeat.run(3, max_events=200)
        assert durations == [r.duration for r in again]

    def test_callable_workload_receives_rng(self, k6):
        seen = []

        def workload(rng):
            values = rng.normal(size=6)
            seen.append(values.copy())
            return values - values.mean()

        runner = MonteCarloRunner(k6, VanillaGossip, workload, seed=1)
        runner.run(2, max_events=50)
        assert len(seen) == 2
        assert not np.allclose(seen[0], seen[1])

    def test_summary_aggregates(self, k6):
        runner = MonteCarloRunner(k6, VanillaGossip,
                                  [1.0, -1.0, 0, 0, 0, 0], seed=2)
        summary = runner.summary(4, target_ratio=1e-6)
        assert summary.n_replicates == 4
        assert summary.mean_variance_ratio <= 1e-6
        assert summary.max_sum_drift < 1e-9
        assert "mean_duration" in summary.to_dict()

    def test_zero_replicates_rejected(self, k6):
        runner = MonteCarloRunner(k6, VanillaGossip, np.zeros(6), seed=0)
        with pytest.raises(SimulationError):
            runner.run(0)
        with pytest.raises(SimulationError):
            ReplicateSummary.from_results([])

    def test_n_workers_does_not_change_results(self, k6):
        x0 = [float(i) for i in range(6)]
        serial = MonteCarloRunner(k6, VanillaGossip, x0, seed=0)
        parallel = MonteCarloRunner(k6, VanillaGossip, x0, seed=0,
                                    n_workers=2)
        assert parallel.backend.name == "process"
        serial_results = serial.run(3, max_events=200)
        parallel_results = parallel.run(3, max_events=200)
        assert [r.duration for r in serial_results] == \
            [r.duration for r in parallel_results]
        assert all(
            np.array_equal(a.values, b.values)
            for a, b in zip(serial_results, parallel_results)
        )

    def test_seed_sequence_accepted_as_root_seed(self, k6):
        root = np.random.SeedSequence(123)
        runner = MonteCarloRunner(k6, VanillaGossip, np.arange(6.0),
                                  seed=root)
        first = runner.run(2, max_events=100)
        again = MonteCarloRunner(k6, VanillaGossip, np.arange(6.0),
                                 seed=np.random.SeedSequence(123)).run(
                                     2, max_events=100)
        assert [r.duration for r in first] == [r.duration for r in again]
        # Regression: repeated run() on one runner must not drift (the
        # root used to be spawned in place, advancing its child counter).
        repeat = runner.run(2, max_events=100)
        assert [r.duration for r in first] == [r.duration for r in repeat]

    def test_replicate_streams_disjoint_from_caller_spawns(self, k6):
        """Regression: replicates used spawn keys (0,), (1,), ... — the
        same keys a caller spawning their own streams from the root gets,
        silently correlating 'independent' randomness."""
        caller_children = {
            child.spawn_key for child in np.random.SeedSequence(7).spawn(4)
        }
        for root in (np.random.SeedSequence(7), 7):  # both seed kinds
            specs = MonteCarloRunner(
                k6, VanillaGossip, np.zeros(6), seed=root
            ).build_specs(4, max_events=10)
            runner_keys = {spec.seed_sequence.spawn_key for spec in specs}
            assert not runner_keys & caller_children

    def test_specs_reexecutable_without_drift(self, k6):
        """Regression: execute_replicate spawned from the spec's seed
        sequence in place, so re-running the same specs list drifted."""
        from repro.engine.backends import SerialBackend

        specs = MonteCarloRunner(
            k6, VanillaGossip, [float(i) for i in range(6)], seed=3
        ).build_specs(2, max_events=100)
        first = SerialBackend().execute(specs)
        second = SerialBackend().execute(specs)
        assert [r.duration for r in first] == [r.duration for r in second]

    def test_clock_and_algorithm_streams_decoupled(self, k6):
        """Regression: the clock generator doubled as the algorithm's
        stream, so a clock consuming extra draws perturbed the algorithm.
        Now the event sequence is identical whether or not the algorithm
        draws randomness of its own."""
        from repro.algorithms.convex import RandomConvexGossip

        x0 = [float(i) for i in range(6)]
        vanilla = MonteCarloRunner(k6, VanillaGossip, x0, seed=8).run(
            2, max_events=150)
        random_convex = MonteCarloRunner(
            k6, RandomConvexGossip, x0, seed=8).run(2, max_events=150)
        # Same seed => same clock stream => same event times, even though
        # RandomConvexGossip consumes its (now private) algorithm stream.
        assert [r.duration for r in vanilla] == \
            [r.duration for r in random_convex]


class TestPaperEstimator:
    def test_constants_match_paper(self):
        assert PAPER_VARIANCE_THRESHOLD == pytest.approx(math.e**-2)
        assert PAPER_CONFIDENCE_QUANTILE == pytest.approx(1 - 1 / math.e)

    def test_monotone_estimate_reasonable_for_k16(self):
        """K_n averages in ~4/n time; the estimate must sit near that."""
        graph = complete_graph(16)
        x0 = [1.0 if i < 8 else -1.0 for i in range(16)]
        estimate = estimate_averaging_time(
            graph, VanillaGossip, x0, n_replicates=12, seed=3, max_time=50.0
        )
        assert not estimate.is_censored
        spectral = 4.0 / 16.0
        assert 0.2 * spectral < estimate.estimate < 8.0 * spectral
        assert estimate.n_replicates == 12
        assert estimate.n_censored == 0
        assert estimate.mean > 0

    def test_quantile_ordering(self):
        graph = complete_graph(12)
        x0 = [float(i) for i in range(12)]
        low = estimate_averaging_time(
            graph, VanillaGossip, x0, n_replicates=16, seed=4,
            max_time=50.0, quantile=0.25,
        )
        high = estimate_averaging_time(
            graph, VanillaGossip, x0, n_replicates=16, seed=4,
            max_time=50.0, quantile=0.9,
        )
        assert low.estimate <= high.estimate

    def test_censoring_reported(self, medium_dumbbell):
        """The paper-gain oscillation on a balanced dumbbell never settles."""
        partition = medium_dumbbell.partition
        x0 = np.where(partition.side == 0, 1.0, -1.0)

        def factory():
            return NonConvexSparseCutGossip(partition, epoch_length=1,
                                            gain="paper")

        estimate = estimate_averaging_time(
            medium_dumbbell.graph, factory, x0, n_replicates=3, seed=5,
            max_time=30.0,
        )
        assert estimate.n_censored == 3
        assert estimate.is_censored
        assert estimate.to_dict()["estimate"] is None

    def test_validation(self, k6):
        with pytest.raises(SimulationError):
            estimate_averaging_time(k6, VanillaGossip, np.zeros(6),
                                    max_time=1.0, threshold=2.0)
        with pytest.raises(SimulationError):
            estimate_averaging_time(k6, VanillaGossip, np.zeros(6),
                                    max_time=1.0, quantile=1.5)
        with pytest.raises(SimulationError, match="max_time"):
            estimate_averaging_time(k6, VanillaGossip, np.zeros(6))


class TestEpsilonEstimator:
    def test_smaller_epsilon_takes_longer(self):
        graph = complete_graph(16)
        x0 = [1.0 if i < 8 else -1.0 for i in range(16)]
        loose = epsilon_averaging_time(
            graph, VanillaGossip, x0, 0.5, n_replicates=8, seed=6,
            max_time=100.0,
        )
        tight = epsilon_averaging_time(
            graph, VanillaGossip, x0, 0.05, n_replicates=8, seed=6,
            max_time=100.0,
        )
        assert loose.estimate < tight.estimate
        assert tight.threshold == pytest.approx(0.05**2)

    def test_epsilon_validated(self, k6):
        with pytest.raises(SimulationError):
            epsilon_averaging_time(k6, VanillaGossip, np.zeros(6), 1.5,
                                   max_time=1.0)


class TestMetrics:
    def test_variance_of(self):
        assert variance_of([1.0, -1.0]) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            variance_of([])

    def test_variance_ratio(self):
        assert variance_ratio([0.5, -0.5], [1.0, -1.0]) == pytest.approx(0.25)
        assert variance_ratio([1.0, -1.0], [2.0, 2.0]) == float("inf")
        assert variance_ratio([3.0, 3.0], [2.0, 2.0]) == 0.0

    def test_consensus_error(self):
        assert consensus_error([1.0, 2.0, 4.0], 2.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            consensus_error([], 0.0)

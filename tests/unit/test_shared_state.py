"""Unit tests for shared-state shipping.

The contract under test has two halves.  Correctness: a slim replicate
spec resolved against a shared-state mapping must produce **bit-identical**
results whether the state is inlined into every spec, resolved in-process
by the serial backend, or shipped to pool workers through the executor
initializer.  Economy: one sweep must ship each distinct configuration's
payload **at most once per worker** — never once per replicate — which the
pickle-counting regression below pins down.

Everything here lives at module level so it survives pickling to worker
processes.
"""

from __future__ import annotations

import json

import pytest

from repro.algorithms.vanilla import VanillaGossip
from repro.engine.backends import (
    ProcessPoolBackend,
    SerialBackend,
    SharedStateRef,
    execute_replicate,
    resolve_replicate_spec,
    shutdown_shared_backends,
    spec_has_refs,
)
from repro.engine.results import results_identical
from repro.engine.runner import MonteCarloRunner
from repro.engine.sweeps import (
    PointConfig,
    ReplicateBudget,
    SweepAxis,
    SweepRunner,
    SweepSpec,
)
from repro.errors import SimulationError
from repro.graphs.topologies import complete_graph


@pytest.fixture(autouse=True)
def _release_shared_pools():
    yield
    shutdown_shared_backends()


class CountingWorkload:
    """A picklable workload sampler that counts parent-side pickles.

    ``__getstate__`` runs in whichever process serializes the object, so
    incrementing a class attribute observes exactly how many times the
    payload crossed (or was staged to cross) the process boundary from
    the parent.  Worker-side unpickling never touches the parent's count.
    """

    pickled = 0

    def __init__(self, n: int) -> None:
        self.n = n

    def __getstate__(self) -> dict:
        type(self).pickled += 1
        return {"n": self.n}

    def __setstate__(self, state: dict) -> None:
        self.n = state["n"]

    def __call__(self, rng) -> list:
        values = [float(rng.uniform(-1.0, 1.0)) for _ in range(self.n)]
        mean = sum(values) / len(values)
        return [v - mean for v in values]


def build_counting_point(*, n: int) -> PointConfig:
    return PointConfig(
        graph=complete_graph(int(n)),
        algorithm_factory=VanillaGossip,
        initial_values=CountingWorkload(int(n)),
        max_time=50.0,
        max_events=100_000,
    )


def counting_spec() -> SweepSpec:
    return SweepSpec(
        name="counting",
        axes=(SweepAxis("n", (5, 6)),),
        builder=build_counting_point,
    )


def make_runner(seed: int = 3) -> MonteCarloRunner:
    graph = complete_graph(6)
    x0 = [float(i) for i in range(6)]
    return MonteCarloRunner(graph, VanillaGossip, x0, seed=seed)


def sweep_json(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


class TestSlimSpecs:
    def test_shared_key_builds_refs_and_identical_seeds(self):
        runner = make_runner()
        inline = runner.build_specs(3, max_events=200)
        slim = runner.build_specs(3, shared_key="k", max_events=200)
        for full, ref in zip(inline, slim):
            assert not spec_has_refs(full)
            assert spec_has_refs(ref)
            assert ref.graph == SharedStateRef("k", "graph")
            assert ref.clock_factory is None  # None stays inline
            # Seed derivation must not depend on the shipping mode.
            assert ref.seed_sequence.entropy == full.seed_sequence.entropy
            assert ref.seed_sequence.spawn_key == full.seed_sequence.spawn_key

    def test_resolution_returns_the_callers_objects(self):
        runner = make_runner()
        (slim,) = runner.build_specs(1, shared_key="k", max_events=200)
        resolved = resolve_replicate_spec(slim, {"k": runner.shared_state()})
        assert resolved.graph is runner.graph
        assert resolved.algorithm_factory is runner.algorithm_factory
        assert resolved.initial_values is runner.initial_values

    def test_resolution_is_a_no_op_without_refs(self):
        runner = make_runner()
        (full,) = runner.build_specs(1, max_events=200)
        assert resolve_replicate_spec(full, {}) is full

    def test_missing_key_and_missing_item_raise(self):
        runner = make_runner()
        (slim,) = runner.build_specs(1, shared_key="k", max_events=200)
        with pytest.raises(SimulationError, match="not in the installed"):
            resolve_replicate_spec(slim, {})
        with pytest.raises(SimulationError, match="has no item"):
            resolve_replicate_spec(slim, {"k": {"graph": runner.graph}})

    def test_execute_replicate_refuses_unresolved_refs(self):
        runner = make_runner()
        (slim,) = runner.build_specs(1, shared_key="k", max_events=200)
        with pytest.raises(SimulationError, match="SharedStateRef"):
            execute_replicate(slim)

    def test_execute_shared_matches_inline_execute(self, backend):
        """One matrix over serial/process/cluster: slim specs resolved
        against the shared mapping must equal inlined execution."""
        runner = make_runner()
        inline = runner.build_specs(4, max_events=300)
        slim = runner.build_specs(4, shared_key="k", max_events=300)
        reference = SerialBackend().execute(inline)
        shared = backend.execute_shared(slim, {"k": runner.shared_state()})
        assert len(reference) == len(shared)
        for a, b in zip(reference, shared):
            assert results_identical(a, b)


class TestSweepShipping:
    BUDGET = ReplicateBudget.adaptive(
        target_ci=0.6,
        min_replicates=3,
        max_replicates=12,
        round_size=2,
    )

    def test_serial_sweep_never_pickles_shared_state(self):
        CountingWorkload.pickled = 0
        SweepRunner(spec := counting_spec(), seed=7, budget=self.BUDGET).run()
        assert spec.n_points == 2
        assert CountingWorkload.pickled == 0

    def test_sweep_identical_across_shipping_modes(self, backend):
        """Every backend x both shipping modes, one matrix: the reported
        sweep must be byte-identical to the serial reference."""
        spec = counting_spec()
        serial = SweepRunner(spec, seed=7, budget=self.BUDGET).run()
        for share_state in (True, False):
            swept = SweepRunner(
                spec,
                seed=7,
                budget=self.BUDGET,
                backend=backend,
                share_state=share_state,
            ).run()
            assert sweep_json(swept) == sweep_json(serial), (
                f"share_state={share_state} diverged from serial"
            )

    @pytest.mark.slow
    def test_state_ships_at_most_once_per_worker(self):
        """The economy regression: a multi-round sweep stages each
        configuration's payload for shipping exactly once (one pool
        build with one initializer blob), while inline pickling pays
        again on every round's pool crossing (once per dispatched
        chunk that references the payload — chunk-level pickling
        memoizes within a chunk, so the bound is per chunk rather
        than per replicate)."""
        n_workers = 2
        spec = counting_spec()

        CountingWorkload.pickled = 0
        backend = ProcessPoolBackend(n_workers)
        runner = SweepRunner(spec, seed=7, budget=self.BUDGET, backend=backend)
        result = runner.run()
        backend.shutdown()
        assert runner.stats["rounds"] > 1, "need a multi-round sweep"
        assert backend.shared_installs == 1
        # The mapping is pickled once into the initializer blob; the
        # blob (bytes) then reaches each worker at spawn, so the
        # parent-side pickle count is bounded by the worker count.
        assert CountingWorkload.pickled <= n_workers
        shared_pickles = CountingWorkload.pickled

        CountingWorkload.pickled = 0
        backend = ProcessPoolBackend(n_workers)
        inline_runner = SweepRunner(
            spec,
            seed=7,
            budget=self.BUDGET,
            backend=backend,
            share_state=False,
        )
        inline = inline_runner.run()
        backend.shutdown()
        assert sweep_json(inline) == sweep_json(result)
        # Inline shipping re-pickles the payload on every round: each
        # configuration's window crosses the pool again (at least one
        # chunk per unsettled configuration per round), where shared
        # shipping paid once per worker for the whole sweep.
        assert CountingWorkload.pickled >= inline_runner.stats["rounds"]
        assert shared_pickles < CountingWorkload.pickled

    @pytest.mark.slow
    def test_pool_reuses_workers_across_rounds_and_sweeps(self):
        """Re-running with the same mapping content must not rebuild the
        pool: identity hits first, then the content digest."""
        spec = counting_spec()
        backend = ProcessPoolBackend(2)
        SweepRunner(spec, seed=7, budget=self.BUDGET, backend=backend).run()
        assert backend.shared_installs == 1
        # A second sweep builds an equal-but-distinct mapping: the digest
        # check must recognize it and keep the warm pool.
        SweepRunner(spec, seed=7, budget=self.BUDGET, backend=backend).run()
        assert backend.shared_installs == 1
        backend.shutdown()

    def test_unpicklable_shared_state_fails_fast(self):
        backend = ProcessPoolBackend(2)
        runner = make_runner()
        slim = runner.build_specs(4, shared_key="k", max_events=200)
        state = dict(runner.shared_state())
        state["algorithm_factory"] = lambda: VanillaGossip()
        try:
            with pytest.raises(SimulationError, match="AlgorithmFactory"):
                backend.execute_shared(slim, {"k": state})
        finally:
            backend.shutdown()

"""Unit tests for the topology generators."""

from __future__ import annotations

import math

import pytest

from repro.errors import GraphError
from repro.graphs.topologies import (
    binary_tree,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    random_geometric_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
)


class TestDeterministicFamilies:
    def test_complete_graph_counts(self):
        graph = complete_graph(7)
        assert graph.n_edges == 21
        assert all(graph.degree(v) == 6 for v in graph)

    def test_complete_graph_minimum(self):
        assert complete_graph(1).n_edges == 0
        with pytest.raises(GraphError):
            complete_graph(0)

    def test_path_graph(self):
        graph = path_graph(5)
        assert graph.n_edges == 4
        assert graph.degree(0) == 1
        assert graph.degree(2) == 2

    def test_single_vertex_path(self):
        assert path_graph(1).n_edges == 0

    def test_cycle_graph(self):
        graph = cycle_graph(6)
        assert graph.n_edges == 6
        assert all(graph.degree(v) == 2 for v in graph)
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_star_graph(self):
        graph = star_graph(9)
        assert graph.degree(0) == 8
        assert all(graph.degree(v) == 1 for v in range(1, 9))

    def test_grid_graph(self):
        graph = grid_graph(3, 4)
        assert graph.n_vertices == 12
        assert graph.n_edges == 3 * 3 + 2 * 4  # vertical + horizontal
        assert graph.is_connected()

    def test_grid_corner_degrees(self):
        graph = grid_graph(3, 3)
        assert graph.degree(0) == 2
        assert graph.degree(4) == 4  # center

    def test_torus_graph_regular(self):
        graph = torus_graph(3, 4)
        assert graph.n_vertices == 12
        assert all(graph.degree(v) == 4 for v in graph)
        with pytest.raises(GraphError):
            torus_graph(2, 5)

    def test_hypercube(self):
        graph = hypercube_graph(4)
        assert graph.n_vertices == 16
        assert graph.n_edges == 32
        assert all(graph.degree(v) == 4 for v in graph)

    def test_binary_tree(self):
        graph = binary_tree(3)
        assert graph.n_vertices == 15
        assert graph.n_edges == 14
        assert graph.is_connected()
        assert binary_tree(0).n_vertices == 1

    def test_lollipop(self):
        graph = lollipop_graph(5, 3)
        assert graph.n_vertices == 8
        assert graph.n_edges == 10 + 3
        assert graph.is_connected()


class TestRandomFamilies:
    def test_erdos_renyi_connected(self):
        graph = erdos_renyi_graph(30, 0.3, seed=1)
        assert graph.n_vertices == 30
        assert graph.is_connected()

    def test_erdos_renyi_deterministic_with_seed(self):
        a = erdos_renyi_graph(20, 0.3, seed=5)
        b = erdos_renyi_graph(20, 0.3, seed=5)
        assert a == b

    def test_erdos_renyi_p_one_is_complete(self):
        graph = erdos_renyi_graph(8, 1.0, seed=0)
        assert graph.n_edges == 28

    def test_erdos_renyi_invalid_p(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 1.5)

    def test_erdos_renyi_gives_up_when_disconnected(self):
        with pytest.raises(GraphError, match="connected"):
            erdos_renyi_graph(40, 0.001, seed=3)

    @pytest.mark.parametrize("n,degree", [(12, 3), (16, 8), (50, 8), (24, 4)])
    def test_random_regular_is_regular_connected(self, n, degree):
        graph = random_regular_graph(n, degree, seed=7)
        assert all(graph.degree(v) == degree for v in graph)
        assert graph.is_connected()

    def test_random_regular_parity_rejected(self):
        with pytest.raises(GraphError, match="even"):
            random_regular_graph(7, 3)

    def test_random_regular_degree_bounds(self):
        with pytest.raises(GraphError):
            random_regular_graph(8, 8)
        with pytest.raises(GraphError):
            random_regular_graph(8, 0)

    def test_random_geometric_connected(self):
        radius = 2.0 * math.sqrt(math.log(30) / 30)
        graph = random_geometric_graph(30, radius, seed=2)
        assert graph.is_connected()

    def test_random_geometric_invalid_radius(self):
        with pytest.raises(GraphError):
            random_geometric_graph(10, 0.0)

    def test_random_regular_expansion(self):
        """8-regular random graphs should have a healthy spectral gap."""
        from repro.graphs.spectral import algebraic_connectivity

        graph = random_regular_graph(64, 8, seed=11)
        # Friedman: lambda_2(L) ~ d - 2 sqrt(d-1) ~ 2.7; allow slack.
        assert algebraic_connectivity(graph) > 1.0

"""Unit tests for the core orchestration layer."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.config import AlgorithmAConfig
from repro.core.epochs import (
    epoch_length_ticks,
    vanilla_time_empirical,
    vanilla_time_spectral,
)
from repro.core.sparse_cut_averaging import SparseCutAveraging
from repro.errors import AlgorithmError
from repro.graphs.composites import dumbbell_graph, two_cliques
from repro.graphs.graph import Graph
from repro.graphs.topologies import complete_graph


class TestEpochs:
    def test_spectral_tvan_complete_graph(self):
        assert vanilla_time_spectral(complete_graph(16)) == pytest.approx(0.25)

    def test_empirical_tvan_close_to_spectral(self):
        graph = complete_graph(16)
        empirical = vanilla_time_empirical(graph, n_replicates=12, seed=0)
        spectral = vanilla_time_spectral(graph)
        assert 0.2 * spectral < empirical < 10.0 * spectral

    def test_epoch_length_formula(self, medium_dumbbell):
        partition = medium_dumbbell.partition
        length = epoch_length_ticks(partition, constant=3.0)
        expected = math.ceil(3.0 * (0.25 + 0.25) * math.log(32))
        assert length == expected

    def test_epoch_length_floors_at_one(self):
        pair = dumbbell_graph(256)  # Tvan ~ 4/128, tiny product
        assert epoch_length_ticks(pair.partition, constant=0.01) == 1

    def test_epoch_length_validation(self, medium_dumbbell):
        with pytest.raises(AlgorithmError):
            epoch_length_ticks(medium_dumbbell.partition, constant=-1.0)
        with pytest.raises(AlgorithmError):
            epoch_length_ticks(medium_dumbbell.partition, method="psychic")

    def test_empirical_method_runs(self, medium_dumbbell):
        length = epoch_length_ticks(
            medium_dumbbell.partition, constant=3.0, method="empirical", seed=1
        )
        assert length >= 1


class TestConfig:
    def test_defaults(self):
        config = AlgorithmAConfig()
        assert config.epoch_constant == 3.0
        assert config.gain == "exact"
        assert config.tvan_method == "spectral"

    def test_validation(self):
        with pytest.raises(AlgorithmError):
            AlgorithmAConfig(epoch_constant=0)
        with pytest.raises(AlgorithmError):
            AlgorithmAConfig(tvan_method="guess")
        with pytest.raises(AlgorithmError):
            AlgorithmAConfig(epoch_length_override=0)

    def test_to_dict(self):
        info = AlgorithmAConfig(gain="paper").to_dict()
        assert info["gain"] == "paper"


class TestSparseCutAveraging:
    def test_auto_detects_planted_cut(self, medium_dumbbell):
        sca = SparseCutAveraging(medium_dumbbell.graph)
        assert sca.partition.cut_size == 1
        assert sca.cut_method == "fiedler_sweep"

    def test_provided_partition_used(self, medium_dumbbell):
        sca = SparseCutAveraging(
            medium_dumbbell.graph, partition=medium_dumbbell.partition
        )
        assert sca.cut_method == "provided"

    def test_run_converges_and_preserves_mean(self, medium_dumbbell):
        sca = SparseCutAveraging(
            medium_dumbbell.graph, partition=medium_dumbbell.partition
        )
        x0 = [float(i) for i in range(32)]
        result = sca.run(x0, seed=0, target_ratio=1e-6)
        assert result.variance_ratio <= 1e-6
        assert result.values.mean() == pytest.approx(np.mean(x0))

    def test_epoch_length_override(self, medium_dumbbell):
        sca = SparseCutAveraging(
            medium_dumbbell.graph,
            partition=medium_dumbbell.partition,
            config=AlgorithmAConfig(epoch_length_override=7),
        )
        assert sca.epoch_length() == 7
        assert sca.build_algorithm().epoch_length == 7

    def test_bounds_sensible(self, medium_dumbbell):
        sca = SparseCutAveraging(
            medium_dumbbell.graph, partition=medium_dumbbell.partition
        )
        assert sca.theorem1_lower_bound() == pytest.approx(
            (1 - 1 / math.e) ** 2 / 4 * 16
        )
        assert sca.theorem2_upper_bound() == pytest.approx(
            3.0 * math.log(32) * 0.5
        )

    def test_averaging_time_within_theorem2_envelope(self, medium_dumbbell):
        sca = SparseCutAveraging(
            medium_dumbbell.graph, partition=medium_dumbbell.partition
        )
        partition = medium_dumbbell.partition
        x0 = np.where(partition.side == 0, 1.0, -1.0)
        estimate = sca.averaging_time(x0, n_replicates=4, seed=1)
        assert not estimate.is_censored
        # Theorem 2 is an order bound; at n=32 the first-swap latency
        # (~epoch length in time units) dominates, so allow the epoch
        # length plus a constant factor over the envelope.
        envelope = sca.theorem2_upper_bound() + sca.epoch_length()
        assert estimate.estimate < 2.0 * envelope

    def test_summary_fields(self, medium_dumbbell):
        sca = SparseCutAveraging(
            medium_dumbbell.graph, partition=medium_dumbbell.partition
        )
        summary = sca.summary()
        for key in ("n1", "cut_size", "epoch_length", "tvan_g1",
                    "theorem1_lower_bound_convex", "config"):
            assert key in summary

    def test_disconnected_graph_rejected(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        with pytest.raises(AlgorithmError, match="connected"):
            SparseCutAveraging(graph)

    def test_foreign_partition_rejected(self, medium_dumbbell, small_dumbbell):
        with pytest.raises(AlgorithmError, match="different graph"):
            SparseCutAveraging(
                medium_dumbbell.graph, partition=small_dumbbell.partition
            )

    def test_unbalanced_instance(self):
        pair = two_cliques(6, 18, n_bridges=1)
        sca = SparseCutAveraging(pair.graph, partition=pair.partition)
        x0 = np.where(pair.partition.side == 0, 1.0, -6.0 / 18.0)
        result = sca.run(x0, seed=2, target_ratio=1e-5)
        assert result.variance_ratio <= 1e-5

"""Unit tests for the Monte-Carlo execution backends.

The load-bearing property is the reproducibility guarantee: for the same
root seed, every backend must produce **bit-identical** results, because
all randomness is derived from per-replicate seed sequences inside
``execute_replicate`` and never from execution order.  Factories defined
here live at module level so they survive pickling to worker processes.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.algorithms.convex import ConvexGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.poisson import PoissonClockFactory, PoissonEdgeClocks
from repro.clocks.unreliable import (
    FailingPoissonClockFactory,
    LossyPoissonClockFactory,
)
from repro.engine.backends import (
    WORKERS_ENV_VAR,
    AlgorithmFactory,
    ExecutionBackend,
    ProcessPoolBackend,
    ReplicateSpec,
    SerialBackend,
    default_n_workers,
    execute_replicate,
    resolve_backend,
    shutdown_shared_backends,
)
from repro.engine.runner import MonteCarloRunner, ReplicateSummary
from repro.errors import SimulationError
from repro.graphs.composites import dumbbell_graph
from repro.graphs.topologies import complete_graph


@pytest.fixture(autouse=True)
def _release_shared_pools():
    """Backends resolved by name/count register module-global warm pools;
    release them so no test leaks worker processes or registry state
    into later tests (the suite must pass in any collection order)."""
    yield
    shutdown_shared_backends()


def zero_mean_gaussian_workload(rng: np.random.Generator) -> np.ndarray:
    """Module-level workload sampler (picklable by reference)."""
    values = rng.normal(size=8)
    return values - values.mean()


def assert_results_identical(first, second):
    """Field-by-field exact equality of two RunResult lists."""
    from repro.engine.results import results_identical

    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert results_identical(a, b)


class TestDeterminismAcrossBackends:
    """The cross-backend matrix: each test runs once per registered
    backend flavor (serial / process pool / TCP cluster) through the
    shared ``backend`` fixture and must reproduce the serial reference
    bit-for-bit."""

    def test_backend_matches_serial_exactly(self, backend):
        """The headline guarantee: same seed => bit-identical results."""
        graph = complete_graph(8)
        x0 = [float(i) for i in range(8)]
        serial = MonteCarloRunner(
            graph, VanillaGossip, x0, seed=42, backend=SerialBackend()
        ).run(6, max_events=400, thresholds=(0.5, 0.1))
        other = MonteCarloRunner(
            graph, VanillaGossip, x0, seed=42, backend=backend
        ).run(6, max_events=400, thresholds=(0.5, 0.1))
        assert_results_identical(serial, other)
        assert (
            ReplicateSummary.from_results(serial).to_dict()
            == ReplicateSummary.from_results(other).to_dict()
        )

    def test_random_workload_matches_across_backends(self, backend):
        """Per-replicate workload streams are backend-independent too."""
        graph = complete_graph(8)
        serial = MonteCarloRunner(
            graph, VanillaGossip, zero_mean_gaussian_workload, seed=7,
            backend="serial",
        ).run(4, max_events=200)
        other = MonteCarloRunner(
            graph, VanillaGossip, zero_mean_gaussian_workload, seed=7,
            backend=backend,
        ).run(4, max_events=200)
        assert_results_identical(serial, other)

    def test_algorithm_factory_across_backends(self, backend):
        graph = complete_graph(6)
        x0 = [float(i) for i in range(6)]
        factory = AlgorithmFactory(ConvexGossip, 0.75)
        serial = MonteCarloRunner(
            graph, factory, x0, seed=3, backend="serial"
        ).run(3, max_events=150)
        other = MonteCarloRunner(
            graph, factory, x0, seed=3, backend=backend
        ).run(3, max_events=150)
        assert_results_identical(serial, other)


@pytest.mark.slow
class TestWorkerCountIndependence:
    def test_deterministic_across_worker_counts(self):
        """2 vs 3 workers: scheduling must never leak into results."""
        graph = complete_graph(8)
        x0 = [1.0, -1.0] * 4
        two = MonteCarloRunner(
            graph, VanillaGossip, x0, seed=9, n_workers=2
        ).run(5, max_events=300)
        three = MonteCarloRunner(
            graph, VanillaGossip, x0, seed=9, n_workers=3
        ).run(5, max_events=300)
        assert_results_identical(two, three)

    def test_pool_is_reused_across_runs(self):
        """One backend instance keeps its worker pool warm between
        execute() calls (experiments make dozens of estimator calls)."""
        graph = complete_graph(8)
        x0 = [float(i) for i in range(8)]
        backend = ProcessPoolBackend(2)
        runner = MonteCarloRunner(
            graph, VanillaGossip, x0, seed=1, backend=backend
        )
        first = runner.run(3, max_events=100)
        pool = backend._pool
        assert pool is not None
        second = runner.run(3, max_events=100)
        assert backend._pool is pool  # same executor, no restart
        assert_results_identical(first, second)
        backend.shutdown()
        assert backend._pool is None
        # A post-shutdown run transparently builds a fresh pool.
        assert_results_identical(first, runner.run(3, max_events=100))
        backend.shutdown()


class TestFailureModelsThroughBackends:
    """Satellite coverage: both failure models through every backend."""

    @pytest.mark.parametrize(
        "clock_factory",
        [
            LossyPoissonClockFactory(15, 0.3),
            FailingPoissonClockFactory(15, 0.5),
            FailingPoissonClockFactory(15, {0: 1.0, 3: 2.5}),
        ],
        ids=["lossy", "failing-rate", "failing-scripted"],
    )
    def test_failure_clock_deterministic_across_backends(
        self, clock_factory, backend
    ):
        graph = complete_graph(6)
        assert graph.n_edges == 15
        x0 = [float(i) for i in range(6)]
        serial = MonteCarloRunner(
            graph, VanillaGossip, x0, seed=11,
            clock_factory=clock_factory, backend="serial",
        ).run(4, max_events=200)
        other = MonteCarloRunner(
            graph, VanillaGossip, x0, seed=11,
            clock_factory=clock_factory, backend=backend,
        ).run(4, max_events=200)
        assert_results_identical(serial, other)

    def test_factories_pickle(self):
        for factory in (
            LossyPoissonClockFactory(4, 0.2),
            FailingPoissonClockFactory(4, 1.5),
            FailingPoissonClockFactory(4, {1: 2.0}),
            PoissonClockFactory(4),
            AlgorithmFactory(ConvexGossip, 0.5),
        ):
            clone = pickle.loads(pickle.dumps(factory))
            assert type(clone) is type(factory)

    @pytest.mark.slow
    def test_scripted_deaths_silence_edges_under_pool(self):
        """A scripted death observable through the process backend."""
        graph = complete_graph(6)
        dead = dict.fromkeys(range(graph.n_edges), 0.0)
        keep = graph.n_edges - 1
        del dead[keep]  # only one surviving edge
        runner = MonteCarloRunner(
            graph, VanillaGossip, [float(i) for i in range(6)], seed=2,
            clock_factory=FailingPoissonClockFactory(graph.n_edges, dead),
            backend=ProcessPoolBackend(2),
        )
        for result in runner.run(2, max_events=100):
            # Every processed event came from the lone surviving edge, so
            # only its two endpoint values can have changed.
            u, v = (int(x) for x in graph.edges[keep])
            untouched = [i for i in range(6) if i not in (u, v)]
            assert np.array_equal(
                result.values[untouched],
                np.asarray([float(i) for i in untouched]),
            )


class TestStreamIndependence:
    """Regression: clock, workload and algorithm streams must not share
    a generator (they did — the algorithm used the clock's stream)."""

    def test_three_streams_are_distinct(self):
        captured = {}

        class CapturingAlgorithm(VanillaGossip):
            def setup(self, graph, values, rng):
                super().setup(graph, values, rng)
                captured["algorithm"] = rng

        class CapturingClockFactory:
            def __call__(self, rng):
                captured["clock"] = rng
                return PoissonEdgeClocks(15, seed=rng)

        def workload(rng):
            captured["workload"] = rng
            return [float(i) for i in range(6)]

        spec = ReplicateSpec(
            index=0,
            graph=complete_graph(6),
            algorithm_factory=CapturingAlgorithm,
            initial_values=workload,
            seed_sequence=np.random.SeedSequence(0),
            clock_factory=CapturingClockFactory(),
            run_kwargs={"max_events": 32},
        )
        execute_replicate(spec)
        assert set(captured) == {"algorithm", "clock", "workload"}
        rngs = list(captured.values())
        assert len({id(rng) for rng in rngs}) == 3
        draws = [rng.random() for rng in rngs]
        assert len(set(draws)) == 3  # independent streams, not copies

    def test_default_clock_uses_its_own_stream(self):
        """Even without a clock factory the algorithm gets a private rng."""
        captured = {}

        class CapturingAlgorithm(VanillaGossip):
            def setup(self, graph, values, rng):
                super().setup(graph, values, rng)
                captured["rng"] = rng

        spec = ReplicateSpec(
            index=0,
            graph=complete_graph(6),
            algorithm_factory=CapturingAlgorithm,
            initial_values=[float(i) for i in range(6)],
            seed_sequence=np.random.SeedSequence(1),
            run_kwargs={"max_events": 64},
        )
        result = execute_replicate(spec)
        assert result.n_events > 0
        # Replaying the clock substream reproduces the clock exactly,
        # proving the clock was not fed the algorithm's generator.
        clock_seq = np.random.SeedSequence(1).spawn(3)[0]
        replay = PoissonEdgeClocks(15, seed=np.random.default_rng(clock_seq))
        times, _ = replay.next_batch(result.n_events)
        assert times[-1] == pytest.approx(result.duration)


class TestBackendSelection:
    def test_resolve_backend_accepts_instances_and_names(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend
        assert isinstance(resolve_backend("serial"), SerialBackend)
        process = resolve_backend("process", n_workers=3)
        assert isinstance(process, ProcessPoolBackend)
        assert process.n_workers == 3

    def test_resolve_backend_from_worker_count(self):
        assert isinstance(resolve_backend(n_workers=1), SerialBackend)
        pool = resolve_backend(n_workers=4)
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.n_workers == 4

    def test_resolved_process_backends_share_a_warm_pool(self):
        """Estimator calls resolve per call; sharing the backend per
        worker count is what lets them reuse one pool."""
        from repro.engine.averaging_time import estimate_averaging_time

        shared = resolve_backend(n_workers=2)
        assert resolve_backend("process", n_workers=2) is shared
        assert resolve_backend(n_workers=2) is shared
        graph = complete_graph(6)
        x0 = np.arange(6.0) - 2.5
        first = estimate_averaging_time(
            graph, VanillaGossip, x0, n_replicates=2, seed=4,
            max_time=20.0, n_workers=2,
        )
        pool = shared._pool
        assert pool is not None  # the call rode the shared backend
        second = estimate_averaging_time(
            graph, VanillaGossip, x0, n_replicates=2, seed=4,
            max_time=20.0, n_workers=2,
        )
        assert shared._pool is pool  # warm pool reused, not restarted
        assert first.samples.tolist() == second.samples.tolist()

    def test_env_var_reaches_named_backends(self, monkeypatch):
        """REPRO_WORKERS must steer name-resolved backends too, not just
        the backend=None path."""
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        process = resolve_backend("process")
        assert process.n_workers == 3
        cluster = resolve_backend("cluster")
        try:
            assert cluster.n_workers == 3
        finally:
            cluster.shutdown()
        # An explicit count still wins over the environment.
        assert resolve_backend("process", n_workers=2).n_workers == 2

    def test_env_var_selects_workers(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "5")
        assert default_n_workers() == 5
        backend = resolve_backend()
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.n_workers == 5
        monkeypatch.delenv(WORKERS_ENV_VAR)
        assert default_n_workers() == 1
        assert isinstance(resolve_backend(), SerialBackend)

    def test_invalid_selections_rejected(self, monkeypatch):
        with pytest.raises(SimulationError):
            resolve_backend("threads")
        with pytest.raises(SimulationError):
            resolve_backend(object())  # type: ignore[arg-type]
        with pytest.raises(SimulationError):
            resolve_backend(n_workers=0)
        with pytest.raises(SimulationError):
            ProcessPoolBackend(0)
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(SimulationError):
            default_n_workers()
        monkeypatch.setenv(WORKERS_ENV_VAR, "-2")
        with pytest.raises(SimulationError):
            default_n_workers()

    def test_runner_rejects_short_backend_output(self):
        class LossyBackend(ExecutionBackend):
            name = "lossy"

            def execute(self, specs):
                return [execute_replicate(spec) for spec in specs[:-1]]

        runner = MonteCarloRunner(
            complete_graph(6), VanillaGossip, np.zeros(6), seed=0,
            backend=LossyBackend(),
        )
        with pytest.raises(SimulationError, match="returned 1 results"):
            runner.run(2, max_events=10)


class TestPicklability:
    def test_unpicklable_spec_fails_fast_with_guidance(self):
        graph = complete_graph(6)
        runner = MonteCarloRunner(
            graph, lambda: VanillaGossip(), np.zeros(6), seed=0,
            backend=ProcessPoolBackend(2),
        )
        with pytest.raises(SimulationError, match="AlgorithmFactory"):
            runner.run(2, max_events=10)

    def test_recorder_rejected_by_process_backend(self):
        """A caller-side recorder can't be filled across the process
        boundary; the backend must say so instead of silently returning
        an empty recorder."""
        from repro.engine.recorder import TraceRecorder

        runner = MonteCarloRunner(
            complete_graph(6), VanillaGossip,
            [float(i) for i in range(6)], seed=0,
            backend=ProcessPoolBackend(2),
        )
        with pytest.raises(SimulationError, match="recorder"):
            runner.run(2, max_events=50, recorder=TraceRecorder(10))
        # Serial execution (even under a 1-worker pool) still supports it.
        recorder = TraceRecorder(10)
        MonteCarloRunner(
            complete_graph(6), VanillaGossip,
            [float(i) for i in range(6)], seed=0,
            backend=ProcessPoolBackend(1),
        ).run(2, max_events=50, recorder=recorder)
        assert recorder.n_samples > 0

    def test_single_worker_pool_allows_lambdas(self):
        """n_workers=1 short-circuits in-process, so closures are fine."""
        graph = complete_graph(6)
        runner = MonteCarloRunner(
            graph, lambda: VanillaGossip(), np.zeros(6), seed=0,
            backend=ProcessPoolBackend(1),
        )
        assert len(runner.run(2, max_events=10)) == 2

    def test_replicate_spec_round_trips(self):
        pair = dumbbell_graph(16)
        spec = ReplicateSpec(
            index=3,
            graph=pair.graph,
            algorithm_factory=VanillaGossip,
            initial_values=np.arange(16, dtype=np.float64),
            seed_sequence=np.random.SeedSequence(5).spawn(4)[3],
            run_kwargs={"max_events": 50},
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert_results_identical(
            [execute_replicate(spec)], [execute_replicate(clone)]
        )

    def test_results_identical_tolerates_nan(self):
        """Diverged runs carry NaN; two byte-identical NaN results must
        still count as identical under the reproducibility contract."""
        import math

        from repro.engine.results import RunResult, results_identical

        def make():
            return RunResult(
                values=np.array([math.nan, 1.0]),
                duration=1.0, n_events=1, n_updates=1,
                variance_initial=1.0, variance_final=math.nan,
                sum_initial=0.0, sum_final=math.nan,
                stopped_by="diverged",
            )

        assert results_identical(make(), make())
        different = make()
        different.duration = 2.0
        assert not results_identical(make(), different)

    def test_algorithm_factory_validates_and_reprs(self):
        with pytest.raises(SimulationError):
            AlgorithmFactory(42)  # type: ignore[arg-type]
        factory = AlgorithmFactory(ConvexGossip, 0.75)
        assert "ConvexGossip" in repr(factory)
        assert factory().name.startswith("convex")

"""Unit tests for the immutable Graph core."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EdgeError, VertexError
from repro.graphs.graph import Graph


class TestConstruction:
    def test_basic_counts(self, triangle):
        assert triangle.n_vertices == 3
        assert triangle.n_edges == 3
        assert len(triangle) == 3

    def test_empty_graph(self):
        graph = Graph(0, [])
        assert graph.n_vertices == 0
        assert graph.n_edges == 0

    def test_isolated_vertices_allowed(self):
        graph = Graph(5, [(0, 1)])
        assert graph.degree(4) == 0

    def test_edges_normalized_and_sorted(self):
        graph = Graph(4, [(3, 1), (2, 0), (1, 0)])
        expected = np.array([[0, 1], [0, 2], [1, 3]])
        assert np.array_equal(graph.edges, expected)

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1, [])

    def test_self_loop_rejected(self):
        with pytest.raises(EdgeError, match="self-loop"):
            Graph(3, [(1, 1)])

    def test_duplicate_edge_rejected(self):
        with pytest.raises(EdgeError, match="duplicate"):
            Graph(3, [(0, 1), (1, 0)])

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(VertexError):
            Graph(3, [(0, 3)])

    def test_malformed_edge_rejected(self):
        with pytest.raises(EdgeError, match="malformed"):
            Graph(3, [(0,)])

    def test_edges_array_is_read_only(self, triangle):
        with pytest.raises(ValueError):
            triangle.edges[0, 0] = 9


class TestAccessors:
    def test_degrees(self, small_path):
        assert small_path.degree(0) == 1
        assert small_path.degree(1) == 2
        assert np.array_equal(small_path.degrees, [1, 2, 2, 1])

    def test_neighbors_sorted_content(self, triangle):
        assert sorted(triangle.neighbors(0).tolist()) == [1, 2]

    def test_incident_edges_match_endpoints(self, small_path):
        for vertex in small_path:
            for edge_id in small_path.incident_edges(vertex):
                endpoints = small_path.edge_endpoints(int(edge_id))
                assert vertex in endpoints

    def test_edge_id_roundtrip(self, k6):
        for edge_id in range(k6.n_edges):
            u, v = k6.edge_endpoints(edge_id)
            assert k6.edge_id(u, v) == edge_id
            assert k6.edge_id(v, u) == edge_id

    def test_edge_id_missing_edge(self, small_path):
        with pytest.raises(EdgeError, match="no edge"):
            small_path.edge_id(0, 3)

    def test_edge_endpoints_out_of_range(self, triangle):
        with pytest.raises(EdgeError):
            triangle.edge_endpoints(99)

    def test_has_edge(self, small_path):
        assert small_path.has_edge(0, 1)
        assert small_path.has_edge(1, 0)
        assert not small_path.has_edge(0, 2)
        assert not small_path.has_edge(0, 0)
        assert not small_path.has_edge(0, 17)

    def test_degree_vertex_out_of_range(self, triangle):
        with pytest.raises(VertexError):
            triangle.degree(5)


class TestTraversal:
    def test_bfs_order_covers_connected_graph(self, k6):
        order = k6.bfs_order(0)
        assert sorted(order.tolist()) == list(range(6))

    def test_bfs_from_isolated_vertex(self):
        graph = Graph(3, [(0, 1)])
        assert graph.bfs_order(2).tolist() == [2]

    def test_is_connected_true(self, c8):
        assert c8.is_connected()

    def test_is_connected_false(self):
        assert not Graph(4, [(0, 1), (2, 3)]).is_connected()

    def test_trivial_graphs_connected(self):
        assert Graph(0, []).is_connected()
        assert Graph(1, []).is_connected()


class TestSubgraph:
    def test_subgraph_of_complete(self, k6):
        sub, mapping = k6.subgraph([1, 3, 5])
        assert sub.n_vertices == 3
        assert sub.n_edges == 3
        assert mapping.tolist() == [1, 3, 5]

    def test_subgraph_drops_external_edges(self, small_path):
        sub, _ = small_path.subgraph([0, 2, 3])
        assert sub.n_edges == 1  # only (2,3) survives

    def test_subgraph_duplicate_vertices_rejected(self, k6):
        with pytest.raises(VertexError):
            k6.subgraph([1, 1, 2])


class TestMatrixAndDunder:
    def test_adjacency_matrix_symmetric(self, c8):
        matrix = c8.adjacency_matrix()
        assert np.array_equal(matrix, matrix.T)
        assert matrix.sum() == 2 * c8.n_edges

    def test_equality_and_hash(self):
        a = Graph(3, [(0, 1), (1, 2)])
        b = Graph(3, [(1, 2), (0, 1)])
        c = Graph(3, [(0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_mentions_sizes(self, triangle):
        assert "n_vertices=3" in repr(triangle)

    def test_iteration_yields_vertices(self, triangle):
        assert list(triangle) == [0, 1, 2]

"""Unit tests for the exact expected-dynamics module."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.spectral_dynamics import (
    VanillaMeanDynamics,
    monte_carlo_expected_variance,
)
from repro.errors import AnalysisError
from repro.graphs.graph import Graph
from repro.graphs.topologies import complete_graph, cycle_graph


class TestMeanDynamics:
    def test_mean_preserved_and_converges(self):
        dynamics = VanillaMeanDynamics(complete_graph(8))
        x0 = np.arange(8, dtype=float)
        for t in (0.0, 0.5, 5.0):
            expected = dynamics.expected_values(x0, t)
            assert expected.mean() == pytest.approx(x0.mean())
        late = dynamics.expected_values(x0, 50.0)
        assert np.allclose(late, x0.mean(), atol=1e-8)

    def test_t_zero_is_identity(self):
        dynamics = VanillaMeanDynamics(cycle_graph(6))
        x0 = np.array([3.0, -1.0, 0.5, 2.0, -4.0, -0.5])
        assert np.allclose(dynamics.expected_values(x0, 0.0), x0)

    def test_eigenmode_decays_at_its_rate(self):
        graph = cycle_graph(12)
        dynamics = VanillaMeanDynamics(graph)
        # Second eigenmode of the cycle: cos(2 pi k / n).
        mode = np.cos(2 * np.pi * np.arange(12) / 12)
        t = 2.0
        decayed = dynamics.expected_values(mode, t)
        eigenvalue = 2.0 * (1.0 - math.cos(2 * math.pi / 12))
        assert np.allclose(decayed, mode * math.exp(-0.5 * eigenvalue * t),
                           atol=1e-9)

    def test_envelopes_are_ordered(self):
        dynamics = VanillaMeanDynamics(cycle_graph(10))
        x0 = np.sin(np.arange(10))
        x0 -= x0.mean()
        for t in (0.1, 1.0, 3.0):
            low = dynamics.variance_of_expected(x0, t)
            high = dynamics.variance_upper_envelope(x0, t)
            assert low <= high + 1e-12

    def test_half_life(self):
        dynamics = VanillaMeanDynamics(complete_graph(8))
        assert dynamics.half_life_of_mode(1) == pytest.approx(
            2 * math.log(2) / 8
        )
        with pytest.raises(AnalysisError):
            dynamics.half_life_of_mode(0)

    def test_validation(self):
        dynamics = VanillaMeanDynamics(cycle_graph(5))
        with pytest.raises(AnalysisError):
            dynamics.expected_values(np.zeros(5), -1.0)
        with pytest.raises(AnalysisError):
            dynamics.expected_values(np.zeros(3), 1.0)
        with pytest.raises(AnalysisError):
            VanillaMeanDynamics(Graph(1, []))


class TestMonteCarloValidation:
    def test_mc_variance_inside_the_sandwich(self):
        graph = cycle_graph(12)
        x0 = np.sin(np.arange(12) * 2 * np.pi / 12)
        dynamics = VanillaMeanDynamics(graph)
        times = [0.5, 1.5, 3.0]
        mc = monte_carlo_expected_variance(
            graph, x0, times, n_replicates=40, seed=2
        )
        for t, measured in zip(times, mc):
            lower = dynamics.variance_of_expected(x0, t)
            upper = dynamics.variance_upper_envelope(x0, t)
            slack = 0.05 * float(np.var(x0))
            assert lower - slack <= measured <= upper + slack

    def test_grid_validation(self):
        graph = cycle_graph(5)
        with pytest.raises(AnalysisError):
            monte_carlo_expected_variance(graph, np.zeros(5), [])
        with pytest.raises(AnalysisError):
            monte_carlo_expected_variance(graph, np.zeros(5), [2.0, 1.0])
        with pytest.raises(AnalysisError):
            monte_carlo_expected_variance(graph, np.zeros(5), [1.0],
                                          n_replicates=0)

"""Unit tests for the simulation-kernel layer.

The contract under test is **bit-identity**: for any eligible spec the
vectorized replicate-batch kernel must reproduce the scalar event loop's
:class:`RunResult` to the byte — same values, same durations, same
crossing records, same stop reason — because kernel choice (like backend
choice) is a scheduling decision, never a modeling one.  The suite pins

* the eligibility rules (which algorithm / clock / run-kwarg shapes
  vectorize, and which must fall back to scalar),
* result bit-identity across kernels for every eligible family and every
  stop mode, down to single-replicate forced-vectorized batches,
* the dispatcher's ordering and telemetry counters, and
* sweep-level byte-identity through the whole backend matrix.

Everything here lives at module level so it survives pickling to worker
processes.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.algorithms.convex import ConvexGossip, RandomConvexGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.poisson import PoissonClockFactory, PoissonEdgeClocks
from repro.clocks.schedule import RoundRobinSchedule
from repro.engine.backends import (
    AlgorithmFactory,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.engine.kernels import (
    AUTO_MIN_BATCH,
    KERNEL_ENV_VAR,
    ScalarKernel,
    VectorizedBatchKernel,
    default_kernel,
    execute_specs,
    new_kernel_stats,
    normalize_kernel,
)
from repro.engine.kernels.vectorized import (
    eligible_clock_factory,
    eligible_run_kwargs,
    resolve_update,
)
from repro.engine.recorder import TraceRecorder
from repro.engine.results import results_identical
from repro.engine.runner import MonteCarloRunner
from repro.engine.sweeps import (
    PointConfig,
    ReplicateBudget,
    SweepAxis,
    SweepRunner,
    SweepSpec,
)
from repro.errors import SimulationError
from repro.graphs.composites import dumbbell_graph
from repro.graphs.topologies import complete_graph

THRESHOLDS = (np.e**-2, 0.5)


class GaussianWorkload:
    """Picklable per-replicate workload sampler."""

    def __init__(self, n: int) -> None:
        self.n = n

    def __call__(self, rng: np.random.Generator):
        return rng.normal(size=self.n)


class SubclassedVanilla(VanillaGossip):
    """A subclass must never silently take the parent's fast path."""


class RoundRobinFactory:
    """A non-Poisson clock factory (disqualifies vectorization)."""

    def __init__(self, n_edges: int) -> None:
        self.n_edges = n_edges

    def __call__(self, rng: np.random.Generator) -> RoundRobinSchedule:
        return RoundRobinSchedule(self.n_edges)


def runner_for(graph, factory, workload, *, kernel: str, seed: int = 42):
    return MonteCarloRunner(graph, factory, workload, seed=seed, kernel=kernel)


def identical_lists(a, b) -> bool:
    return len(a) == len(b) and all(results_identical(x, y) for x, y in zip(a, b))


ELIGIBLE_FACTORIES = [
    pytest.param(AlgorithmFactory(VanillaGossip), id="vanilla"),
    pytest.param(AlgorithmFactory(ConvexGossip, alpha=0.3), id="convex"),
    pytest.param(
        AlgorithmFactory(RandomConvexGossip, low=0.2, high=0.8),
        id="random-convex",
    ),
]


class TestEligibility:
    def test_convex_family_resolves(self):
        assert resolve_update(VanillaGossip()) is not None
        assert resolve_update(ConvexGossip(alpha=0.25)) is not None
        assert resolve_update(RandomConvexGossip(low=0.1, high=0.9)) is not None

    def test_subclass_never_fast_paths(self):
        """Exact-type matching: an on_tick override in a subclass would
        silently diverge if the parent's update rule were applied."""
        assert resolve_update(SubclassedVanilla()) is None

    def test_clock_factory_rules(self):
        assert eligible_clock_factory(None)
        assert eligible_clock_factory(PoissonClockFactory(12))
        assert not eligible_clock_factory(RoundRobinFactory(12))

    def test_run_kwargs_rules(self):
        assert eligible_run_kwargs({"max_events": 100, "target_ratio": 0.1})
        assert eligible_run_kwargs({"max_time": 5.0, "recorder": None})
        assert not eligible_run_kwargs({"max_events": 100, "unknown": 1})
        assert not eligible_run_kwargs(
            {"max_events": 100, "recorder": TraceRecorder(sample_every=10)}
        )

    def test_supports_composes_the_rules(self, k6):
        kernel = VectorizedBatchKernel()
        runner = runner_for(k6, VanillaGossip, GaussianWorkload(6), kernel="vectorized")
        (spec,) = runner.build_specs(1, max_events=100)
        assert kernel.supports(spec)
        (spec,) = MonteCarloRunner(
            k6,
            SubclassedVanilla,
            GaussianWorkload(6),
            seed=42,
            kernel="vectorized",
        ).build_specs(1, max_events=100)
        assert not kernel.supports(spec)
        assert ScalarKernel().supports(spec)


class TestKernelSelection:
    def test_normalize_rejects_unknown(self):
        with pytest.raises(SimulationError, match="unknown kernel"):
            normalize_kernel("turbo")

    def test_default_kernel_reads_environment(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert default_kernel() == "auto"
        monkeypatch.setenv(KERNEL_ENV_VAR, "vectorized")
        assert default_kernel() == "vectorized"
        monkeypatch.setenv(KERNEL_ENV_VAR, "turbo")
        with pytest.raises(SimulationError, match=KERNEL_ENV_VAR):
            default_kernel()

    def test_runner_inherits_environment_default(self, k6, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "scalar")
        runner = MonteCarloRunner(k6, VanillaGossip, np.arange(6.0))
        assert runner.kernel == "scalar"
        (spec,) = runner.build_specs(1, max_events=10)
        assert spec.kernel == "scalar"

    def test_runner_rejects_unknown_kernel(self, k6):
        with pytest.raises(SimulationError, match="unknown kernel"):
            MonteCarloRunner(k6, VanillaGossip, np.arange(6.0), kernel="turbo")


class TestBitIdentity:
    """Scalar vs vectorized, field-for-field, for every eligible family."""

    @pytest.mark.parametrize("factory", ELIGIBLE_FACTORIES)
    def test_target_ratio_stop(self, factory, small_dumbbell):
        graph = small_dumbbell.graph
        workload = GaussianWorkload(graph.n_vertices)
        kwargs = dict(target_ratio=1e-4, max_events=200_000, thresholds=THRESHOLDS)
        scalar = runner_for(graph, factory, workload, kernel="scalar")
        vector = runner_for(graph, factory, workload, kernel="vectorized")
        assert identical_lists(scalar.run(20, **kwargs), vector.run(20, **kwargs))

    @pytest.mark.parametrize("factory", ELIGIBLE_FACTORIES)
    def test_max_events_stop(self, factory, k6):
        workload = GaussianWorkload(6)
        scalar = runner_for(k6, factory, workload, kernel="scalar")
        vector = runner_for(k6, factory, workload, kernel="vectorized")
        assert identical_lists(
            scalar.run(20, max_events=5_000),
            vector.run(20, max_events=5_000),
        )

    def test_max_time_stop(self, k6):
        workload = GaussianWorkload(6)
        scalar = runner_for(k6, VanillaGossip, workload, kernel="scalar")
        vector = runner_for(k6, VanillaGossip, workload, kernel="vectorized")
        assert identical_lists(
            scalar.run(20, max_time=2.5), vector.run(20, max_time=2.5)
        )

    def test_fixed_vector_workload(self, k6):
        x0 = np.linspace(-1.0, 1.0, 6)
        scalar = runner_for(k6, VanillaGossip, x0, kernel="scalar")
        vector = runner_for(k6, VanillaGossip, x0, kernel="vectorized")
        assert identical_lists(
            scalar.run(20, max_events=3_000),
            vector.run(20, max_events=3_000),
        )

    def test_duplicate_and_unsorted_thresholds(self, k6):
        workload = GaussianWorkload(6)
        kwargs = dict(max_events=4_000, thresholds=(0.5, 0.5, np.e**-2, 0.9))
        scalar = runner_for(k6, VanillaGossip, workload, kernel="scalar")
        vector = runner_for(k6, VanillaGossip, workload, kernel="vectorized")
        assert identical_lists(scalar.run(20, **kwargs), vector.run(20, **kwargs))

    def test_explicit_poisson_clock_factory(self, k6):
        workload = GaussianWorkload(6)
        kwargs = dict(max_events=3_000)
        results = []
        for kernel in ("scalar", "vectorized"):
            runner = MonteCarloRunner(
                k6,
                VanillaGossip,
                workload,
                seed=42,
                clock_factory=PoissonClockFactory(k6.n_edges),
                kernel=kernel,
            )
            results.append(runner.run(20, **kwargs))
        assert identical_lists(*results)

    def test_single_replicate_forced_vectorized(self, k6):
        """Forced 'vectorized' takes the lockstep path at any width,
        including the cluster worker's one-spec-per-task shape."""
        workload = GaussianWorkload(6)
        scalar = runner_for(k6, VanillaGossip, workload, kernel="scalar")
        vector = runner_for(k6, VanillaGossip, workload, kernel="vectorized")
        stats = vector.backend.kernel_stats
        before = dict(stats)
        assert identical_lists(
            scalar.run(1, max_events=2_000), vector.run(1, max_events=2_000)
        )
        assert stats["vectorized_replicates"] - before["vectorized_replicates"] == 1

    def test_zero_variance_short_circuit(self, k6):
        x0 = np.full(6, 3.0)
        scalar = runner_for(k6, VanillaGossip, x0, kernel="scalar")
        vector = runner_for(k6, VanillaGossip, x0, kernel="vectorized")
        a = scalar.run(4, target_ratio=0.1)
        b = vector.run(4, target_ratio=0.1)
        assert identical_lists(a, b)
        assert all(r.stopped_by == "target_ratio" for r in b)
        assert all(r.n_events == 0 for r in b)

    def test_vectorized_rejects_bad_run_kwargs(self, k6):
        """The lockstep loop validates with the scalar loop's messages."""
        runner = runner_for(k6, VanillaGossip, GaussianWorkload(6), kernel="vectorized")
        with pytest.raises(SimulationError, match="at least one"):
            runner.run(AUTO_MIN_BATCH)
        with pytest.raises(SimulationError, match="max_time must be positive"):
            runner.run(AUTO_MIN_BATCH, max_time=-1.0)


class TestFallback:
    """Ineligible specs run scalar — and still produce correct results."""

    def kernel_delta(self, runner, n, **kwargs):
        stats = runner.backend.kernel_stats
        before = dict(stats)
        results = runner.run(n, **kwargs)
        return results, {k: stats[k] - before[k] for k in stats}

    def test_recorder_falls_back(self, k6):
        runner = runner_for(k6, VanillaGossip, GaussianWorkload(6), kernel="vectorized")
        _, delta = self.kernel_delta(
            runner,
            4,
            max_events=500,
            recorder=TraceRecorder(sample_every=100),
        )
        assert delta["scalar_replicates"] == 4
        assert delta["vectorized_replicates"] == 0

    def test_subclassed_algorithm_falls_back(self, k6):
        runner = MonteCarloRunner(
            k6,
            SubclassedVanilla,
            GaussianWorkload(6),
            seed=42,
            kernel="vectorized",
        )
        results, delta = self.kernel_delta(runner, 4, max_events=500)
        assert delta["scalar_replicates"] == 4
        assert delta["vectorized_replicates"] == 0
        reference = MonteCarloRunner(
            k6, VanillaGossip, GaussianWorkload(6), seed=42, kernel="scalar"
        ).run(4, max_events=500)
        # Same update rule, same streams: the subclass result is the
        # parent's — via the scalar loop, never the lockstep one.
        assert identical_lists(results, reference)

    def test_scripted_clock_falls_back(self, k6):
        runner = MonteCarloRunner(
            k6,
            VanillaGossip,
            GaussianWorkload(6),
            seed=42,
            clock_factory=RoundRobinFactory(k6.n_edges),
            kernel="vectorized",
        )
        _, delta = self.kernel_delta(runner, 4, max_events=100)
        assert delta["scalar_replicates"] == 4
        assert delta["vectorized_replicates"] == 0

    def test_auto_demotes_small_batches(self, k6):
        runner = runner_for(k6, VanillaGossip, GaussianWorkload(6), kernel="auto")
        _, delta = self.kernel_delta(runner, AUTO_MIN_BATCH - 1, max_events=500)
        assert delta["scalar_replicates"] == AUTO_MIN_BATCH - 1
        assert delta["vectorized_replicates"] == 0
        _, delta = self.kernel_delta(runner, AUTO_MIN_BATCH, max_events=500)
        assert delta["vectorized_replicates"] == AUTO_MIN_BATCH
        assert delta["kernel_installs"] == 1

    def test_scalar_mode_never_vectorizes(self, k6):
        runner = runner_for(k6, VanillaGossip, GaussianWorkload(6), kernel="scalar")
        _, delta = self.kernel_delta(runner, 32, max_events=500)
        assert delta["vectorized_replicates"] == 0
        assert delta["scalar_replicates"] == 32


class TestDispatcher:
    def test_interleaved_configurations_keep_order(self, k6, c8):
        """Two configurations interleaved in one batch: the dispatcher
        groups internally but must return submission order."""
        specs_a = runner_for(
            k6, VanillaGossip, GaussianWorkload(6), kernel="vectorized"
        ).build_specs(6, max_events=400)
        specs_b = runner_for(
            c8, AlgorithmFactory(ConvexGossip, alpha=0.4),
            GaussianWorkload(8),
            kernel="vectorized",
        ).build_specs(6, max_events=400)
        interleaved = [spec for pair in zip(specs_a, specs_b) for spec in pair]
        stats = new_kernel_stats()
        mixed = execute_specs(interleaved, stats=stats)
        reference = execute_specs(specs_a) + execute_specs(specs_b)
        assert identical_lists(mixed[0::2], reference[:6])
        assert identical_lists(mixed[1::2], reference[6:])
        assert stats["kernel_installs"] == 2
        assert stats["vectorized_replicates"] == 12

    def test_empty_batch(self):
        assert execute_specs([]) == []

    @pytest.mark.slow
    def test_process_pool_chunking_identity_and_stats(self, k6):
        """Chunked dispatch across workers preserves results and merges
        kernel telemetry from every worker."""
        workload = GaussianWorkload(6)
        factory = AlgorithmFactory(VanillaGossip)
        serial = runner_for(k6, factory, workload, kernel="scalar").run(
            40, max_events=2_000
        )
        pool = ProcessPoolBackend(2)
        runner = MonteCarloRunner(
            k6, factory, workload, seed=42, backend=pool, kernel="vectorized"
        )
        try:
            results = runner.run(40, max_events=2_000)
            assert identical_lists(results, serial)
            assert pool.kernel_stats["vectorized_replicates"] == 40
            assert pool.kernel_stats["kernel_installs"] >= 2  # >= one/worker
        finally:
            pool.shutdown()


# ----------------------------------------------------------------------
# sweep-level byte-identity through the backend matrix
# ----------------------------------------------------------------------


def build_kernel_point(*, n: int) -> PointConfig:
    return PointConfig(
        graph=complete_graph(int(n)),
        algorithm_factory=VanillaGossip,
        initial_values=GaussianWorkload(int(n)),
        max_time=50.0,
        max_events=100_000,
    )


def kernel_sweep_spec() -> SweepSpec:
    return SweepSpec(
        name="kernel-matrix",
        axes=(SweepAxis("n", (5, 6)),),
        builder=build_kernel_point,
    )


class TestSweepIdentity:
    BUDGET = ReplicateBudget.fixed(6)

    def test_sweep_identical_across_kernels_and_backends(self, backend):
        """The acceptance matrix: a vectorized sweep through any backend
        must serialize byte-identically to the serial scalar sweep."""
        reference = SweepRunner(
            kernel_sweep_spec(), seed=7, budget=self.BUDGET, kernel="scalar"
        ).run()
        swept = SweepRunner(
            kernel_sweep_spec(),
            seed=7,
            budget=self.BUDGET,
            backend=backend,
            kernel="vectorized",
        ).run()
        assert json.dumps(swept.to_dict(), sort_keys=True) == json.dumps(
            reference.to_dict(), sort_keys=True
        )

    def test_sweep_stats_report_kernel_engagement(self):
        runner = SweepRunner(
            kernel_sweep_spec(), seed=7, budget=self.BUDGET, kernel="vectorized"
        )
        runner.run()
        assert runner.stats["vectorized_replicates"] == 12
        assert runner.stats["scalar_replicates"] == 0
        assert runner.stats["kernel_installs"] >= 2
        scalar = SweepRunner(
            kernel_sweep_spec(), seed=7, budget=self.BUDGET, kernel="scalar"
        )
        scalar.run()
        assert scalar.stats["vectorized_replicates"] == 0
        assert scalar.stats["scalar_replicates"] == 12


def test_e3_smoke_sweep_identical_across_kernels():
    """The CI acceptance check in-process: the paper's E3 dumbbell smoke
    sweep serializes byte-identically under every kernel mode."""
    from repro.experiments.specs_sweeps import e3_sweep

    dumps = {}
    for kernel in ("scalar", "vectorized"):
        result = SweepRunner(e3_sweep(scale="smoke"), seed=123, kernel=kernel).run()
        dumps[kernel] = json.dumps(result.to_dict(), sort_keys=True)
    assert dumps["scalar"] == dumps["vectorized"]

"""Unit tests for the simulation-kernel layer.

The contract under test is **bit-identity**: for any eligible spec the
vectorized replicate-batch kernel must reproduce the scalar event loop's
:class:`RunResult` to the byte — same values, same durations, same
crossing records, same stop reason — because kernel choice (like backend
choice) is a scheduling decision, never a modeling one.  The suite pins

* the eligibility rules (which algorithm / clock / run-kwarg shapes
  vectorize, and which must fall back to scalar),
* result bit-identity across kernels for every eligible family and every
  stop mode, down to single-replicate forced-vectorized batches,
* the dispatcher's ordering and telemetry counters, and
* sweep-level byte-identity through the whole backend matrix.

Everything here lives at module level so it survives pickling to worker
processes.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.algorithms.convex import ConvexGossip, RandomConvexGossip
from repro.algorithms.nonconvex import NonConvexSparseCutGossip
from repro.algorithms.vanilla import VanillaGossip
from repro.clocks.poisson import PoissonClockFactory, PoissonEdgeClocks
from repro.clocks.schedule import RoundRobinSchedule
from repro.clocks.unreliable import (
    FailingPoissonClockFactory,
    LossyPoissonClockFactory,
)
from repro.engine.backends import (
    AlgorithmFactory,
    ProcessPoolBackend,
    SerialBackend,
)
from repro.engine.kernels import (
    AUTO_MIN_BATCH,
    KERNEL_ENV_VAR,
    KernelDemotionWarning,
    ScalarKernel,
    VectorizedBatchKernel,
    default_kernel,
    eligibility,
    execute_specs,
    new_kernel_stats,
    normalize_kernel,
    register_update,
)
from repro.engine.kernels.eligibility import (
    ALGORITHM_UNSUPPORTED,
    AUTO_BATCH_BELOW_MIN,
    CLOCK_UNSUPPORTED,
    RECORDER_ATTACHED,
    RUN_KWARG_UNSUPPORTED,
    clock_reason,
    resolve_update,
    run_kwargs_reasons,
)
from repro.engine.recorder import TraceRecorder
from repro.engine.results import results_identical
from repro.engine.runner import MonteCarloRunner
from repro.engine.sweeps import (
    PointConfig,
    ReplicateBudget,
    SweepAxis,
    SweepRunner,
    SweepSpec,
)
from repro.errors import SimulationError
from repro.graphs.composites import dumbbell_graph, two_expanders
from repro.graphs.topologies import complete_graph

THRESHOLDS = (np.e**-2, 0.5)


class GaussianWorkload:
    """Picklable per-replicate workload sampler."""

    def __init__(self, n: int) -> None:
        self.n = n

    def __call__(self, rng: np.random.Generator):
        return rng.normal(size=self.n)


class SubclassedVanilla(VanillaGossip):
    """A subclass must never silently take the parent's fast path."""


class RoundRobinFactory:
    """A non-Poisson clock factory (disqualifies vectorization)."""

    def __init__(self, n_edges: int) -> None:
        self.n_edges = n_edges

    def __call__(self, rng: np.random.Generator) -> RoundRobinSchedule:
        return RoundRobinSchedule(self.n_edges)


def runner_for(graph, factory, workload, *, kernel: str, seed: int = 42):
    return MonteCarloRunner(graph, factory, workload, seed=seed, kernel=kernel)


def identical_lists(a, b) -> bool:
    return len(a) == len(b) and all(results_identical(x, y) for x, y in zip(a, b))


ELIGIBLE_FACTORIES = [
    pytest.param(AlgorithmFactory(VanillaGossip), id="vanilla"),
    pytest.param(AlgorithmFactory(ConvexGossip, alpha=0.3), id="convex"),
    pytest.param(
        AlgorithmFactory(RandomConvexGossip, low=0.2, high=0.8),
        id="random-convex",
    ),
]


def dumbbell_nonconvex_factory(pair, **kwargs):
    defaults = dict(epoch_length=4)
    defaults.update(kwargs)
    return AlgorithmFactory(NonConvexSparseCutGossip, pair.partition, **defaults)


class TestEligibility:
    def test_builtin_family_resolves(self, small_dumbbell):
        assert resolve_update(VanillaGossip()) is not None
        assert resolve_update(ConvexGossip(alpha=0.25)) is not None
        assert resolve_update(RandomConvexGossip(low=0.1, high=0.9)) is not None
        assert (
            resolve_update(
                NonConvexSparseCutGossip(
                    small_dumbbell.partition, epoch_length=4
                )
            )
            is not None
        )

    def test_subclass_never_fast_paths(self):
        """Exact-type matching: an on_tick override in a subclass would
        silently diverge if the parent's update rule were applied."""
        assert resolve_update(SubclassedVanilla()) is None

    def test_clock_factory_rules(self):
        assert clock_reason(None) is None
        assert clock_reason(PoissonClockFactory(12)) is None
        assert clock_reason(LossyPoissonClockFactory(12, 0.3)) is None
        assert clock_reason(FailingPoissonClockFactory(12, 2.0)) is None
        reason = clock_reason(RoundRobinFactory(12))
        assert reason is not None and reason.code == CLOCK_UNSUPPORTED

    def test_run_kwargs_rules(self):
        assert not run_kwargs_reasons({"max_events": 100, "target_ratio": 0.1})
        assert not run_kwargs_reasons({"max_time": 5.0, "recorder": None})
        codes = [r.code for r in run_kwargs_reasons({"max_events": 1, "unknown": 1})]
        assert codes == [RUN_KWARG_UNSUPPORTED]
        codes = [
            r.code
            for r in run_kwargs_reasons(
                {"max_events": 100, "recorder": TraceRecorder(sample_every=10)}
            )
        ]
        assert codes == [RECORDER_ATTACHED]

    def test_eligibility_verdict_composes_reasons(self):
        verdict = eligibility(
            algorithm_factory=SubclassedVanilla,
            clock_factory=RoundRobinFactory(12),
            run_kwargs={"max_events": 100, "unknown": 1},
        )
        assert not verdict
        assert verdict.codes == (
            ALGORITHM_UNSUPPORTED,
            CLOCK_UNSUPPORTED,
            RUN_KWARG_UNSUPPORTED,
        )
        assert ALGORITHM_UNSUPPORTED in verdict.describe()
        good = eligibility(
            algorithm_factory=VanillaGossip,
            clock_factory=None,
            run_kwargs={"max_events": 100},
        )
        assert good and good.reasons == () and good.describe() == "eligible"

    def test_eligibility_accepts_a_spec(self, k6):
        runner = runner_for(k6, VanillaGossip, GaussianWorkload(6), kernel="auto")
        (spec,) = runner.build_specs(1, max_events=100)
        assert eligibility(spec)

    def test_register_update_extension_point(self):
        class ThirdPartyGossip(VanillaGossip):
            pass

        assert resolve_update(ThirdPartyGossip()) is None
        sentinel = object()
        try:

            @register_update(ThirdPartyGossip)
            def _build(algorithm):
                return sentinel

            assert resolve_update(ThirdPartyGossip()) is sentinel
            assert eligibility(
                algorithm_factory=ThirdPartyGossip,
                clock_factory=None,
                run_kwargs={},
            )
        finally:
            from repro.engine.kernels.eligibility import _UPDATE_BUILDERS

            _UPDATE_BUILDERS.pop(ThirdPartyGossip, None)
        assert resolve_update(ThirdPartyGossip()) is None

    def test_register_update_rejects_non_types(self):
        with pytest.raises(TypeError, match="algorithm type"):
            register_update(VanillaGossip())

    def test_deprecated_helpers_warn_and_delegate(self):
        from repro.engine.kernels import vectorized

        with pytest.warns(DeprecationWarning, match="resolve_update"):
            assert vectorized.resolve_update(VanillaGossip()) is not None
        with pytest.warns(DeprecationWarning, match="eligible_clock_factory"):
            assert vectorized.eligible_clock_factory(None)
        with pytest.warns(DeprecationWarning, match="eligible_run_kwargs"):
            assert not vectorized.eligible_run_kwargs({"unknown": 1})

    def test_supports_composes_the_rules(self, k6):
        kernel = VectorizedBatchKernel()
        runner = runner_for(k6, VanillaGossip, GaussianWorkload(6), kernel="vectorized")
        (spec,) = runner.build_specs(1, max_events=100)
        assert kernel.supports(spec)
        (spec,) = MonteCarloRunner(
            k6,
            SubclassedVanilla,
            GaussianWorkload(6),
            seed=42,
            kernel="vectorized",
        ).build_specs(1, max_events=100)
        assert not kernel.supports(spec)
        assert ScalarKernel().supports(spec)


class TestKernelSelection:
    def test_normalize_rejects_unknown(self):
        with pytest.raises(SimulationError, match="unknown kernel"):
            normalize_kernel("turbo")

    def test_default_kernel_reads_environment(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert default_kernel() == "auto"
        monkeypatch.setenv(KERNEL_ENV_VAR, "vectorized")
        assert default_kernel() == "vectorized"
        monkeypatch.setenv(KERNEL_ENV_VAR, "turbo")
        with pytest.raises(SimulationError, match=KERNEL_ENV_VAR):
            default_kernel()

    def test_runner_inherits_environment_default(self, k6, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "scalar")
        runner = MonteCarloRunner(k6, VanillaGossip, np.arange(6.0))
        assert runner.kernel == "scalar"
        (spec,) = runner.build_specs(1, max_events=10)
        assert spec.kernel == "scalar"

    def test_runner_rejects_unknown_kernel(self, k6):
        with pytest.raises(SimulationError, match="unknown kernel"):
            MonteCarloRunner(k6, VanillaGossip, np.arange(6.0), kernel="turbo")


class TestBitIdentity:
    """Scalar vs vectorized, field-for-field, for every eligible family."""

    @pytest.mark.parametrize("factory", ELIGIBLE_FACTORIES)
    def test_target_ratio_stop(self, factory, small_dumbbell):
        graph = small_dumbbell.graph
        workload = GaussianWorkload(graph.n_vertices)
        kwargs = dict(target_ratio=1e-4, max_events=200_000, thresholds=THRESHOLDS)
        scalar = runner_for(graph, factory, workload, kernel="scalar")
        vector = runner_for(graph, factory, workload, kernel="vectorized")
        assert identical_lists(scalar.run(20, **kwargs), vector.run(20, **kwargs))

    @pytest.mark.parametrize("factory", ELIGIBLE_FACTORIES)
    def test_max_events_stop(self, factory, k6):
        workload = GaussianWorkload(6)
        scalar = runner_for(k6, factory, workload, kernel="scalar")
        vector = runner_for(k6, factory, workload, kernel="vectorized")
        assert identical_lists(
            scalar.run(20, max_events=5_000),
            vector.run(20, max_events=5_000),
        )

    def test_max_time_stop(self, k6):
        workload = GaussianWorkload(6)
        scalar = runner_for(k6, VanillaGossip, workload, kernel="scalar")
        vector = runner_for(k6, VanillaGossip, workload, kernel="vectorized")
        assert identical_lists(
            scalar.run(20, max_time=2.5), vector.run(20, max_time=2.5)
        )

    def test_fixed_vector_workload(self, k6):
        x0 = np.linspace(-1.0, 1.0, 6)
        scalar = runner_for(k6, VanillaGossip, x0, kernel="scalar")
        vector = runner_for(k6, VanillaGossip, x0, kernel="vectorized")
        assert identical_lists(
            scalar.run(20, max_events=3_000),
            vector.run(20, max_events=3_000),
        )

    def test_duplicate_and_unsorted_thresholds(self, k6):
        workload = GaussianWorkload(6)
        kwargs = dict(max_events=4_000, thresholds=(0.5, 0.5, np.e**-2, 0.9))
        scalar = runner_for(k6, VanillaGossip, workload, kernel="scalar")
        vector = runner_for(k6, VanillaGossip, workload, kernel="vectorized")
        assert identical_lists(scalar.run(20, **kwargs), vector.run(20, **kwargs))

    def test_explicit_poisson_clock_factory(self, k6):
        workload = GaussianWorkload(6)
        kwargs = dict(max_events=3_000)
        results = []
        for kernel in ("scalar", "vectorized"):
            runner = MonteCarloRunner(
                k6,
                VanillaGossip,
                workload,
                seed=42,
                clock_factory=PoissonClockFactory(k6.n_edges),
                kernel=kernel,
            )
            results.append(runner.run(20, **kwargs))
        assert identical_lists(*results)

    def test_single_replicate_forced_vectorized(self, k6):
        """Forced 'vectorized' takes the lockstep path at any width,
        including the cluster worker's one-spec-per-task shape."""
        workload = GaussianWorkload(6)
        scalar = runner_for(k6, VanillaGossip, workload, kernel="scalar")
        vector = runner_for(k6, VanillaGossip, workload, kernel="vectorized")
        stats = vector.backend.kernel_stats
        before = dict(stats)
        assert identical_lists(
            scalar.run(1, max_events=2_000), vector.run(1, max_events=2_000)
        )
        assert stats["vectorized_replicates"] - before["vectorized_replicates"] == 1

    def test_zero_variance_short_circuit(self, k6):
        x0 = np.full(6, 3.0)
        scalar = runner_for(k6, VanillaGossip, x0, kernel="scalar")
        vector = runner_for(k6, VanillaGossip, x0, kernel="vectorized")
        a = scalar.run(4, target_ratio=0.1)
        b = vector.run(4, target_ratio=0.1)
        assert identical_lists(a, b)
        assert all(r.stopped_by == "target_ratio" for r in b)
        assert all(r.n_events == 0 for r in b)

    def test_vectorized_rejects_bad_run_kwargs(self, k6):
        """The lockstep loop validates with the scalar loop's messages."""
        runner = runner_for(k6, VanillaGossip, GaussianWorkload(6), kernel="vectorized")
        with pytest.raises(SimulationError, match="at least one"):
            runner.run(AUTO_MIN_BATCH)
        with pytest.raises(SimulationError, match="max_time must be positive"):
            runner.run(AUTO_MIN_BATCH, max_time=-1.0)


class TestNonConvexLockstep:
    """Algorithm A through the generalized lockstep loop, field-for-field
    identical to the scalar oracle across every semantic variant."""

    def cmp(self, graph, factory, clock=None, n=10, **kwargs):
        workload = GaussianWorkload(graph.n_vertices)
        scalar = MonteCarloRunner(
            graph, factory, workload, seed=42,
            clock_factory=clock, kernel="scalar",
        ).run(n, **kwargs)
        vector_runner = MonteCarloRunner(
            graph, factory, workload, seed=42,
            clock_factory=clock, kernel="vectorized",
        )
        before = dict(vector_runner.backend.kernel_stats)
        vector = vector_runner.run(n, **kwargs)
        after = vector_runner.backend.kernel_stats
        engaged = after["vectorized_replicates"] - before.get(
            "vectorized_replicates", 0
        )
        assert engaged == n, "the lockstep path must actually run"
        assert identical_lists(scalar, vector)
        return vector

    @pytest.mark.parametrize("gain", ["exact", "paper", 2.5])
    def test_gain_conventions(self, gain, small_dumbbell):
        self.cmp(
            small_dumbbell.graph,
            dumbbell_nonconvex_factory(small_dumbbell, gain=gain),
            max_events=12_000,
            target_ratio=1e-4,
            thresholds=THRESHOLDS,
        )

    @pytest.mark.parametrize("epoch_length", [1, 2, 7])
    def test_epoch_lengths(self, epoch_length, small_dumbbell):
        self.cmp(
            small_dumbbell.graph,
            dumbbell_nonconvex_factory(
                small_dumbbell, epoch_length=epoch_length
            ),
            max_events=12_000,
            target_ratio=1e-4,
        )

    def test_oracle_means(self, small_dumbbell):
        self.cmp(
            small_dumbbell.graph,
            dumbbell_nonconvex_factory(small_dumbbell, oracle_means=True),
            max_events=12_000,
            target_ratio=1e-4,
            thresholds=THRESHOLDS,
        )

    def test_balanced_partition_oscillation(self, small_expander_pair):
        """``n1 = n2`` with the paper gain: the imbalance oscillates
        forever, so replicates run into the divergence/event guards —
        the stop machinery must agree bit-for-bit too."""
        results = self.cmp(
            small_expander_pair.graph,
            dumbbell_nonconvex_factory(
                small_expander_pair, epoch_length=2, gain="paper"
            ),
            max_events=20_000,
            target_ratio=1e-6,
        )
        assert all(r.stopped_by in ("diverged", "max_events") for r in results)

    def test_max_time_and_max_events_stops(self, small_dumbbell):
        factory = dumbbell_nonconvex_factory(small_dumbbell)
        self.cmp(
            small_dumbbell.graph, factory, max_time=2.0, max_events=500_000
        )
        self.cmp(small_dumbbell.graph, factory, max_events=3_000)

    def test_lossy_clock_mask(self, small_dumbbell):
        graph = small_dumbbell.graph
        self.cmp(
            graph,
            dumbbell_nonconvex_factory(small_dumbbell),
            clock=LossyPoissonClockFactory(graph.n_edges, 0.3),
            max_events=10_000,
            target_ratio=1e-4,
            thresholds=THRESHOLDS,
        )

    def test_failing_clock_mask_exhausts(self, small_dumbbell):
        """Edges dying early enough starve the clock: the lockstep loop
        must report the scalar loop's ``clock_exhausted`` exit."""
        graph = small_dumbbell.graph
        results = self.cmp(
            graph,
            dumbbell_nonconvex_factory(small_dumbbell),
            clock=FailingPoissonClockFactory(graph.n_edges, 3.0),
            max_events=50_000,
            target_ratio=1e-6,
        )
        assert any(r.stopped_by == "clock_exhausted" for r in results)

    def test_lossy_convex_families(self, k6):
        """The wrapped clocks also lift the dense-family algorithms into
        the generalized loop — same bit-identity contract."""
        lossy = LossyPoissonClockFactory(k6.n_edges, 0.25)
        self.cmp(
            k6,
            AlgorithmFactory(RandomConvexGossip, low=0.2, high=0.8),
            clock=lossy,
            max_events=6_000,
            target_ratio=1e-4,
        )

    def test_single_replicate_forced_vectorized(self, small_dumbbell):
        self.cmp(
            small_dumbbell.graph,
            dumbbell_nonconvex_factory(small_dumbbell),
            n=1,
            max_events=4_000,
        )

    def test_swap_counts_match_scalar_semantics(self, small_dumbbell):
        """The designated edge's epoch bookkeeping (every L-th tick)
        shows up in n_updates: silenced cut ticks never count."""
        results = self.cmp(
            small_dumbbell.graph,
            dumbbell_nonconvex_factory(small_dumbbell, epoch_length=4),
            max_events=3_000,
        )
        assert all(r.n_updates < r.n_events for r in results)


class TestFallback:
    """Ineligible specs run scalar — and still produce correct results."""

    def kernel_delta(self, runner, n, **kwargs):
        stats = runner.backend.kernel_stats
        before = dict(stats)
        results = runner.run(n, **kwargs)
        return results, {
            k: stats.get(k, 0) - before.get(k, 0)
            for k in set(stats) | set(before)
        }

    def test_recorder_falls_back(self, k6):
        runner = runner_for(k6, VanillaGossip, GaussianWorkload(6), kernel="vectorized")
        _, delta = self.kernel_delta(
            runner,
            4,
            max_events=500,
            recorder=TraceRecorder(sample_every=100),
        )
        assert delta["scalar_replicates"] == 4
        assert delta["vectorized_replicates"] == 0
        assert delta[f"demoted:{RECORDER_ATTACHED}"] == 4

    def test_subclassed_algorithm_falls_back(self, k6):
        runner = MonteCarloRunner(
            k6,
            SubclassedVanilla,
            GaussianWorkload(6),
            seed=42,
            kernel="vectorized",
        )
        results, delta = self.kernel_delta(runner, 4, max_events=500)
        assert delta["scalar_replicates"] == 4
        assert delta["vectorized_replicates"] == 0
        assert delta[f"demoted:{ALGORITHM_UNSUPPORTED}"] == 4
        reference = MonteCarloRunner(
            k6, VanillaGossip, GaussianWorkload(6), seed=42, kernel="scalar"
        ).run(4, max_events=500)
        # Same update rule, same streams: the subclass result is the
        # parent's — via the scalar loop, never the lockstep one.
        assert identical_lists(results, reference)

    def test_scripted_clock_falls_back(self, k6):
        runner = MonteCarloRunner(
            k6,
            VanillaGossip,
            GaussianWorkload(6),
            seed=42,
            clock_factory=RoundRobinFactory(k6.n_edges),
            kernel="vectorized",
        )
        _, delta = self.kernel_delta(runner, 4, max_events=100)
        assert delta["scalar_replicates"] == 4
        assert delta["vectorized_replicates"] == 0
        assert delta[f"demoted:{CLOCK_UNSUPPORTED}"] == 4

    def test_auto_demotes_small_batches(self, k6):
        runner = runner_for(k6, VanillaGossip, GaussianWorkload(6), kernel="auto")
        _, delta = self.kernel_delta(runner, AUTO_MIN_BATCH - 1, max_events=500)
        assert delta["scalar_replicates"] == AUTO_MIN_BATCH - 1
        assert delta["vectorized_replicates"] == 0
        assert delta[f"demoted:{AUTO_BATCH_BELOW_MIN}"] == AUTO_MIN_BATCH - 1
        _, delta = self.kernel_delta(runner, AUTO_MIN_BATCH, max_events=500)
        assert delta["vectorized_replicates"] == AUTO_MIN_BATCH
        assert delta["kernel_installs"] == 1

    def test_scalar_mode_never_vectorizes(self, k6):
        runner = runner_for(k6, VanillaGossip, GaussianWorkload(6), kernel="scalar")
        _, delta = self.kernel_delta(runner, 32, max_events=500)
        assert delta["vectorized_replicates"] == 0
        assert delta["scalar_replicates"] == 32


class TestDispatcher:
    def test_interleaved_configurations_keep_order(self, k6, c8):
        """Two configurations interleaved in one batch: the dispatcher
        groups internally but must return submission order."""
        specs_a = runner_for(
            k6, VanillaGossip, GaussianWorkload(6), kernel="vectorized"
        ).build_specs(6, max_events=400)
        specs_b = runner_for(
            c8, AlgorithmFactory(ConvexGossip, alpha=0.4),
            GaussianWorkload(8),
            kernel="vectorized",
        ).build_specs(6, max_events=400)
        interleaved = [spec for pair in zip(specs_a, specs_b) for spec in pair]
        stats = new_kernel_stats()
        mixed = execute_specs(interleaved, stats=stats)
        reference = execute_specs(specs_a) + execute_specs(specs_b)
        assert identical_lists(mixed[0::2], reference[:6])
        assert identical_lists(mixed[1::2], reference[6:])
        assert stats["kernel_installs"] == 2
        assert stats["vectorized_replicates"] == 12

    def test_empty_batch(self):
        assert execute_specs([]) == []

    @pytest.mark.slow
    def test_process_pool_chunking_identity_and_stats(self, k6):
        """Chunked dispatch across workers preserves results and merges
        kernel telemetry from every worker."""
        workload = GaussianWorkload(6)
        factory = AlgorithmFactory(VanillaGossip)
        serial = runner_for(k6, factory, workload, kernel="scalar").run(
            40, max_events=2_000
        )
        pool = ProcessPoolBackend(2)
        runner = MonteCarloRunner(
            k6, factory, workload, seed=42, backend=pool, kernel="vectorized"
        )
        try:
            results = runner.run(40, max_events=2_000)
            assert identical_lists(results, serial)
            assert pool.kernel_stats["vectorized_replicates"] == 40
            assert pool.kernel_stats["kernel_installs"] >= 2  # >= one/worker
        finally:
            pool.shutdown()


# ----------------------------------------------------------------------
# sweep-level byte-identity through the backend matrix
# ----------------------------------------------------------------------


def build_kernel_point(*, n: int) -> PointConfig:
    return PointConfig(
        graph=complete_graph(int(n)),
        algorithm_factory=VanillaGossip,
        initial_values=GaussianWorkload(int(n)),
        max_time=50.0,
        max_events=100_000,
    )


def kernel_sweep_spec() -> SweepSpec:
    return SweepSpec(
        name="kernel-matrix",
        axes=(SweepAxis("n", (5, 6)),),
        builder=build_kernel_point,
    )


class TestSweepIdentity:
    BUDGET = ReplicateBudget.fixed(6)

    def test_sweep_identical_across_kernels_and_backends(self, backend):
        """The acceptance matrix: a vectorized sweep through any backend
        must serialize byte-identically to the serial scalar sweep."""
        reference = SweepRunner(
            kernel_sweep_spec(), seed=7, budget=self.BUDGET, kernel="scalar"
        ).run()
        swept = SweepRunner(
            kernel_sweep_spec(),
            seed=7,
            budget=self.BUDGET,
            backend=backend,
            kernel="vectorized",
        ).run()
        assert json.dumps(swept.to_dict(), sort_keys=True) == json.dumps(
            reference.to_dict(), sort_keys=True
        )

    def test_sweep_stats_report_kernel_engagement(self):
        runner = SweepRunner(
            kernel_sweep_spec(), seed=7, budget=self.BUDGET, kernel="vectorized"
        )
        runner.run()
        assert runner.stats["vectorized_replicates"] == 12
        assert runner.stats["scalar_replicates"] == 0
        assert runner.stats["kernel_installs"] >= 2
        scalar = SweepRunner(
            kernel_sweep_spec(), seed=7, budget=self.BUDGET, kernel="scalar"
        )
        scalar.run()
        assert scalar.stats["vectorized_replicates"] == 0
        assert scalar.stats["scalar_replicates"] == 12


def build_ineligible_point(*, n: int) -> PointConfig:
    return PointConfig(
        graph=complete_graph(int(n)),
        algorithm_factory=SubclassedVanilla,
        initial_values=GaussianWorkload(int(n)),
        max_time=20.0,
        max_events=20_000,
    )


def ineligible_sweep_spec() -> SweepSpec:
    return SweepSpec(
        name="ineligible-matrix",
        axes=(SweepAxis("n", (5, 6)),),
        builder=build_ineligible_point,
    )


class TestDemotionWarnings:
    BUDGET = ReplicateBudget.fixed(3)

    def test_explicit_vectorized_warns_once_with_codes(self):
        runner = SweepRunner(
            ineligible_sweep_spec(),
            seed=7,
            budget=self.BUDGET,
            kernel="vectorized",
        )
        with pytest.warns(KernelDemotionWarning) as captured:
            runner.run()
        demotions = [
            w for w in captured if issubclass(w.category, KernelDemotionWarning)
        ]
        assert len(demotions) == 1
        message = str(demotions[0].message)
        assert ALGORITHM_UNSUPPORTED in message
        assert "point 0" in message and "point 1" in message
        assert runner.stats[f"demoted:{ALGORITHM_UNSUPPORTED}"] == 6
        assert runner.stats["scalar_replicates"] == 6
        assert runner.stats["vectorized_replicates"] == 0

    @pytest.mark.parametrize("kernel", ["auto", "scalar", None])
    def test_non_explicit_modes_demote_silently(self, kernel, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", KernelDemotionWarning)
            SweepRunner(
                ineligible_sweep_spec(),
                seed=7,
                budget=self.BUDGET,
                kernel=kernel,
            ).run()

    def test_explicit_vectorized_all_eligible_is_quiet(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", KernelDemotionWarning)
            SweepRunner(
                kernel_sweep_spec(),
                seed=7,
                budget=self.BUDGET,
                kernel="vectorized",
            ).run()


class TestKernelExplainCli:
    def test_explain_renders_verdicts(self, capsys):
        from repro.experiments.cli import main

        assert main(["kernel", "explain", "E3", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "eligibility" in out
        assert "algorithm_a" in out
        assert "vectorized" in out

    def test_explain_unknown_sweep_fails_cleanly(self, capsys):
        from repro.experiments.cli import main

        assert main(["kernel", "explain", "E99"]) == 2
        assert capsys.readouterr().err.strip()

    def test_explain_respects_axis_override(self, capsys):
        from repro.experiments.cli import main

        code = main(
            ["kernel", "explain", "E2", "--scale", "smoke", "--axis", "n=24"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 configuration(s)" in out


def test_e3_smoke_sweep_identical_across_kernels():
    """The CI acceptance check in-process: the paper's E3 dumbbell smoke
    sweep serializes byte-identically under every kernel mode."""
    from repro.experiments.specs_sweeps import e3_sweep

    dumps = {}
    for kernel in ("scalar", "vectorized"):
        result = SweepRunner(e3_sweep(scale="smoke"), seed=123, kernel=kernel).run()
        dumps[kernel] = json.dumps(result.to_dict(), sort_keys=True)
    assert dumps["scalar"] == dumps["vectorized"]

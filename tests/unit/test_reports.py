"""Unit tests for the declarative report pipeline.

Three surfaces: the :class:`ReportSpec`/:class:`ReportContext` model
(one pipeline, explicit errors), :class:`SweepSource` resolution order
(store -> artifacts -> compute, with identity checks at every step),
and the artifact/rendering helpers the pipeline leans on
(``save_sweep_result``'s crash-safe latest-alias,
``render_sweep_table``'s censored/diverged cells).
"""

from __future__ import annotations

import math
import os

import pytest

from repro.engine.store import ResultsStore
from repro.engine.sweeps import PointResult, ReplicateBudget, SweepResult
from repro.errors import ExperimentError
from repro.experiments.reporting import render_sweep_table, save_sweep_result
from repro.experiments.specs_sweeps import get_sweep, report_budget
from repro.reports.data import SweepSource, expected_result_fingerprint
from repro.reports.model import ReportContext, ReportSpec, build_report
from repro.reports.registry import REPORT_SPECS


def make_point(index, params, estimate, samples=None):
    if samples is None:
        samples = [estimate] * 3
    return PointResult(
        index=index,
        params=dict(params),
        estimate=estimate,
        ci_low=estimate,
        ci_high=estimate,
        quantile=0.5,
        threshold=1e-3,
        samples=list(samples),
        n_censored=sum(1 for s in samples if math.isinf(s)),
        n_diverged=sum(1 for s in samples if math.isnan(s)),
        budget_exhausted=False,
    )


class TestRegistry:
    def test_all_fourteen_experiments_are_declared(self):
        assert sorted(REPORT_SPECS) == sorted(f"E{i}" for i in range(1, 15))

    def test_every_spec_is_internally_consistent(self):
        for experiment_id, spec in REPORT_SPECS.items():
            assert spec.experiment_id == experiment_id
            assert spec.sweeps or spec.provider is not None
            assert spec.tables, f"{experiment_id} renders no table"
            assert spec.checks, f"{experiment_id} declares no checks"
            assert spec.summary and spec.paper_claim

    def test_specless_report_is_rejected_at_declaration(self):
        with pytest.raises(ExperimentError, match="neither sweeps nor"):
            ReportSpec(
                experiment_id="EX",
                title="t",
                paper_claim="c",
                summary="s",
                default_seed=0,
            )


class TestReportContext:
    def _ctx(self):
        return ReportContext(
            experiment_id="EX",
            scale="smoke",
            seed=0,
            sweeps={},
            data={},
        )

    def test_undeclared_sweep_is_an_experiment_error(self):
        with pytest.raises(ExperimentError, match="did not declare sweep"):
            self._ctx().sweep("E3")

    def test_memo_computes_once(self):
        ctx = self._ctx()
        calls = []
        assert ctx.memo("k", lambda: calls.append(1) or 42) == 42
        assert ctx.memo("k", lambda: calls.append(1) or 42) == 42
        assert len(calls) == 1


class TestBuildReport:
    def _spec(self, **overrides):
        def provider(scale=None, seed=None):
            return {"scale": scale, "seed": seed, "value": 7.0}

        fields = dict(
            experiment_id="EX",
            title=lambda ctx: f"t(value={ctx.data['value']:g})",
            paper_claim="c",
            summary="s",
            default_seed=123,
            provider=provider,
            tables=(),
            checks=(
                lambda ctx: ("positive", ctx.data["value"] > 0, "detail"),
            ),
            findings=lambda ctx: {"value": ctx.data["value"]},
        )
        fields.update(overrides)
        return ReportSpec(**fields)

    def test_provider_payload_feeds_title_findings_and_checks(self):
        report = build_report(self._spec(), scale="smoke")
        assert report.title == "t(value=7)"
        assert report.findings == {"value": 7.0}
        assert report.all_checks_passed
        (check,) = report.checks
        assert (check.name, check.passed) == ("positive", True)

    def test_seed_defaults_to_the_spec_default(self):
        seen = {}

        def provider(scale=None, seed=None):
            seen["seed"] = seed
            return {"value": 1.0}

        build_report(self._spec(provider=provider), scale="smoke")
        assert seen["seed"] == 123
        build_report(self._spec(provider=provider), scale="smoke", seed=9)
        assert seen["seed"] == 9


class TestSweepSource:
    """Resolution order and identity checks, on the smallest real sweep."""

    SCALE, SEED = "smoke", 13

    def _resolve(self, **kwargs):
        return SweepSource(**kwargs).resolve(
            "E3", scale=self.SCALE, seed=self.SEED
        )

    @pytest.fixture(scope="class")
    def computed(self):
        """One computed E3 smoke result shared by the class."""
        return SweepSource().resolve("E3", scale=self.SCALE, seed=self.SEED)

    def test_store_miss_computes_through_the_store_then_hits(
        self, tmp_path, computed
    ):
        store = ResultsStore(tmp_path / "runs.sqlite")
        first = self._resolve(store=store)
        assert first.to_dict() == computed.to_dict()
        # Now a pure reader must resolve the same bytes with compute off.
        again = self._resolve(store=store, compute=False)
        assert again.to_dict() == computed.to_dict()

    def test_artifact_dir_resolves_by_fingerprint(self, tmp_path, computed):
        save_sweep_result(computed, tmp_path)
        result = self._resolve(artifact_dir=tmp_path, compute=False)
        assert result.to_dict() == computed.to_dict()

    def test_mismatched_alias_is_skipped_not_trusted(self, tmp_path, computed):
        # An alias left by a different configuration (other seed) must
        # not satisfy this resolution.
        other = computed.to_dict()
        other["seed"] = self.SEED + 1
        SweepResult.from_dict(other).save(tmp_path / "sweep_e3.json")
        with pytest.raises(ExperimentError, match="computing is disabled"):
            self._resolve(artifact_dir=tmp_path, compute=False)

    def test_corrupt_artifact_is_a_clean_error(self, tmp_path, computed):
        spec = get_sweep("E3", scale=self.SCALE, seed=self.SEED)
        fingerprint = expected_result_fingerprint(
            spec, self.SEED, report_budget(self.SCALE)
        )
        path = tmp_path / f"sweep_e3_{fingerprint[:12]}.json"
        path.write_text('{"not": "a sweep result"}', encoding="utf-8")
        with pytest.raises(ExperimentError, match="not a readable sweep"):
            self._resolve(artifact_dir=tmp_path, compute=False)

    def test_no_compute_miss_names_the_seeding_command(self, tmp_path):
        store = ResultsStore(tmp_path / "runs.sqlite")
        with pytest.raises(ExperimentError) as err:
            self._resolve(store=store, compute=False)
        message = str(err.value)
        assert "repro-experiments sweep E3 --scale smoke --seed 13" in message
        assert "--replicates 3" in message
        assert str(store.path) in message

    def test_unknown_sweep_id_propagates(self):
        with pytest.raises(ExperimentError, match="no sweep declared"):
            SweepSource().resolve("E99", scale="smoke", seed=0)


class TestSaveSweepResultAlias:
    def _result(self, seed=0):
        return SweepResult(
            sweep_name="T",
            axes={"n": [4]},
            seed=seed,
            budget=ReplicateBudget.fixed(2),
            points=[make_point(0, {"n": 4}, 1.5)],
        )

    def test_alias_tracks_the_latest_save(self, tmp_path):
        save_sweep_result(self._result(seed=0), tmp_path)
        target = save_sweep_result(self._result(seed=1), tmp_path)
        alias = tmp_path / "sweep_t.json"
        assert alias.read_bytes() == target.read_bytes()
        assert SweepResult.load(alias).seed == 1

    def test_symlink_failure_falls_back_to_an_intact_copy(
        self, tmp_path, monkeypatch
    ):
        """A failing symlink must leave a complete alias, not a stale or
        missing one (the tmp+rename protocol)."""

        def broken_symlink(src, dst, *args, **kwargs):
            raise OSError("symlinks unsupported")

        monkeypatch.setattr(os, "symlink", broken_symlink)
        target = save_sweep_result(self._result(seed=0), tmp_path)
        alias = tmp_path / "sweep_t.json"
        assert not alias.is_symlink()
        assert alias.read_bytes() == target.read_bytes()
        # A second save must atomically replace, never leave the old
        # alias bytes behind.
        newer = save_sweep_result(self._result(seed=5), tmp_path)
        assert alias.read_bytes() == newer.read_bytes()
        assert not list(tmp_path.glob(".sweep_t.json.*"))

    def test_replacement_failure_leaves_no_tmp_litter(
        self, tmp_path, monkeypatch
    ):
        save_sweep_result(self._result(seed=0), tmp_path)
        before = (tmp_path / "sweep_t.json").read_bytes()

        def broken_replace(src, dst, *args, **kwargs):
            raise OSError("replace failed")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError, match="replace failed"):
            save_sweep_result(self._result(seed=5), tmp_path)
        monkeypatch.undo()
        # The old alias is untouched and no tmp files are left behind.
        assert (tmp_path / "sweep_t.json").read_bytes() == before
        assert not list(tmp_path.glob(".sweep_t.json.*"))


class TestRenderSweepTable:
    def test_censored_and_diverged_cells_are_labelled(self):
        result = SweepResult(
            sweep_name="T",
            axes={"n": [4, 8, 16]},
            seed=0,
            budget=ReplicateBudget.fixed(2),
            points=[
                make_point(0, {"n": 4}, 2.5),
                make_point(1, {"n": 8}, math.inf, samples=[math.inf] * 2),
                make_point(2, {"n": 16}, math.nan, samples=[math.nan] * 2),
            ],
        )
        rows = render_sweep_table(result).to_rows()
        by_n = {row[0]: row for row in rows}
        assert by_n["4"][1] == "2.5"
        assert by_n["8"][1] == "censored"
        assert by_n["16"][1] == "diverged"

"""Shared fixtures: small graphs, partitions and workloads used across tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.composites import dumbbell_graph, two_expanders
from repro.graphs.graph import Graph
from repro.graphs.partition import Partition
from repro.graphs.topologies import complete_graph, cycle_graph, path_graph


@pytest.fixture
def triangle() -> Graph:
    """The smallest interesting graph: K3."""
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def small_path() -> Graph:
    """P4: 0-1-2-3."""
    return path_graph(4)


@pytest.fixture
def k6() -> Graph:
    """K6."""
    return complete_graph(6)


@pytest.fixture
def c8() -> Graph:
    """C8."""
    return cycle_graph(8)


@pytest.fixture
def small_dumbbell():
    """Dumbbell with two K8 halves (BridgedPair)."""
    return dumbbell_graph(16)


@pytest.fixture
def medium_dumbbell():
    """Dumbbell with two K16 halves (BridgedPair)."""
    return dumbbell_graph(32)


@pytest.fixture
def small_expander_pair():
    """Two 4-regular expanders on 12 vertices each, one bridge."""
    return two_expanders(12, 12, degree=4, n_bridges=1, seed=42)


@pytest.fixture
def unbalanced_partition() -> Partition:
    """A 2-vs-4 partition of K6 (cut size 8)."""
    return Partition(complete_graph(6), [0, 0, 1, 1, 1, 1])


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture(
    params=[
        "serial",
        pytest.param("process", marks=pytest.mark.slow),
        pytest.param("cluster", marks=pytest.mark.slow),
    ]
)
def backend(request):
    """One :class:`ExecutionBackend` per flavor — the cross-backend matrix.

    Tests taking this fixture run once per backend (serial, 2-worker
    process pool, 2-worker TCP cluster), which is what makes
    serial/process/cluster bit-identity one parametrized suite instead
    of three copy-pasted ones.  Out-of-process params carry the ``slow``
    marker; teardown releases worker processes and sockets.
    """
    if request.param == "serial":
        from repro.engine.backends import SerialBackend

        yield SerialBackend()
        return
    if request.param == "process":
        from repro.engine.backends import ProcessPoolBackend

        pool = ProcessPoolBackend(2)
        yield pool
        pool.shutdown()
        return
    from repro.engine.cluster import ClusterBackend

    cluster = ClusterBackend(2)
    yield cluster
    cluster.shutdown()

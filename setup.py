"""Setuptools shim.

Kept alongside ``pyproject.toml`` so ``pip install -e .`` works on
environments whose setuptools predates native PEP 660 editable installs
(offline machines without the ``wheel`` package).  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
